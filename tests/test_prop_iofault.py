"""Hypothesis property: arbitrary fault schedules never corrupt artifacts.

For any schedule of injected filesystem faults — any kinds, positions,
windows and site filters, under either engine — a campaign either
completes with byte-identical results or dies with a typed, actionable
error; in both cases every artifact on disk is absent or byte-complete
(identical to a clean run's copy and passing its integrity checks), and
no stale ``.tmp`` sibling survives.
"""

import dataclasses
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from sim_helpers import small_config, write_trace_of

from repro.common import fileio
from repro.common.errors import ObservabilityError, PersistenceError
from repro.common.fileio import persist_text
from repro.obs.collect import collect_metrics
from repro.obs.exporters import write_metrics
from repro.robustness.checkpoint import (
    clear_auto_checkpoints,
    install_auto_checkpoints,
)
from repro.robustness.iofault import IoFaultKind, IoFaultPlan, IoFaultSpec, io_faults
from repro.sim.cache import (
    SimResultCache,
    clear_result_cache,
    install_result_cache,
)
from repro.sim.export import write_report_json
from repro.sim.simulator import simulate


def _workload():
    rng = random.Random(19)
    return {
        core: write_trace_of([rng.randrange(24) for _ in range(30)])
        for core in (0, 1)
    }


def _campaign(root, config, traces):
    cache = install_result_cache(root / "cache")
    install_auto_checkpoints(root / "ckpts", every_slots=32)
    try:
        report = simulate(config, traces)
        cache._memo.clear()
        again = simulate(config, traces)
        assert again.latencies() == report.latencies()
        write_report_json(report, root / "report.json")
        write_metrics(
            collect_metrics(report, config.slot_width), root / "metrics.jsonl"
        )
        persist_text(
            root / "manifest.json",
            json.dumps({"latencies": report.latencies()}, sort_keys=True)
            + "\n",
            site="manifest",
        )
    finally:
        clear_result_cache()
        clear_auto_checkpoints()
    return report.latencies()


def _snapshot(root):
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


_REFERENCES = {}


def _reference(tmp_path_factory, engine):
    """Clean-run artifacts and latencies, computed once per engine."""
    if engine not in _REFERENCES:
        fileio.reset_io_state()
        config = dataclasses.replace(small_config(), engine=engine)
        root = tmp_path_factory.mktemp(f"ref-{engine}")
        latencies = _campaign(root, config, _workload())
        _REFERENCES[engine] = {
            "config": config,
            "latencies": latencies,
            "files": _snapshot(root),
        }
    return _REFERENCES[engine]


_SPECS = st.builds(
    IoFaultSpec,
    kind=st.sampled_from(list(IoFaultKind)),
    nth=st.integers(min_value=1, max_value=60),
    count=st.sampled_from([1, 2, None]),
    site=st.sampled_from(
        [
            None,
            "result-cache",
            "auto-checkpoint",
            "report-export",
            "metrics-export",
            "manifest",
        ]
    ),
)


@pytest.mark.parametrize("engine", ["fast", "reference"])
@settings(max_examples=20, deadline=None)
@given(
    specs=st.lists(_SPECS, min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_prop_any_fault_schedule_leaves_only_clean_artifacts(
    tmp_path_factory, engine, specs, seed
):
    reference = _reference(tmp_path_factory, engine)
    traces = _workload()
    root = tmp_path_factory.mktemp("case")
    fileio.reset_io_state()
    fileio.set_essential_retry(fileio.EssentialRetryPolicy(backoff_base=0.0))
    try:
        completed = None
        with io_faults(IoFaultPlan(specs, seed=seed)):
            try:
                completed = _campaign(root, reference["config"], traces)
            except (PersistenceError, ObservabilityError):
                pass  # loud typed failure: the allowed essential outcome
    finally:
        fileio.set_essential_retry(fileio.EssentialRetryPolicy())
        fileio.reset_io_state()

    # Degraded-but-completed runs produced the clean run's results.
    if completed is not None:
        assert completed == reference["latencies"]

    # No torn artifact, no stale .tmp, nothing the clean run lacks.
    assert not list(root.rglob("*.tmp"))
    for relpath, data in _snapshot(root).items():
        assert relpath in reference["files"], f"unexpected artifact {relpath}"
        assert data == reference["files"][relpath], (
            f"artifact {relpath} differs from the clean campaign's bytes"
        )

    # Every surviving cache entry passes its integrity sweep.
    if (root / "cache").is_dir():
        ok, removed = SimResultCache(root / "cache").verify()
        assert removed == [], "a surviving cache entry failed verification"
