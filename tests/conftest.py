"""Pytest fixtures for the test suite (builders live in sim_helpers)."""

import pytest

from sim_helpers import small_config
from repro.sim.config import SystemConfig


@pytest.fixture
def two_core_shared() -> SystemConfig:
    """2 cores sharing one 4-way single-set partition, events on."""
    return small_config(num_cores=2)


@pytest.fixture
def four_core_shared_ss() -> SystemConfig:
    """4 cores sharing one 4-way single-set partition with sequencer."""
    return small_config(num_cores=4, sequencer=True)
