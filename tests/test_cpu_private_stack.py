"""Unit tests for the private L1/L2 stack and its inclusive discipline."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import AccessType
from repro.cpu.private_stack import PrivateStack, PrivateStackConfig


def make_stack(l1_sets=2, l1_ways=2, l2_sets=4, l2_ways=2):
    return PrivateStack(
        0,
        PrivateStackConfig(
            l1_sets=l1_sets, l1_ways=l1_ways, l2_sets=l2_sets, l2_ways=l2_ways
        ),
    )


def no_l1_stack(l2_sets=4, l2_ways=2):
    return PrivateStack(0, PrivateStackConfig(l1_sets=0, l2_sets=l2_sets, l2_ways=l2_ways))


class TestConfig:
    def test_defaults_match_paper_l2(self):
        config = PrivateStackConfig(l2_sets=16, l2_ways=4)
        assert config.l2_capacity_lines == 64

    def test_l1_disabled(self):
        config = PrivateStackConfig(l1_sets=0)
        assert not config.has_l1

    def test_rejects_zero_l2(self):
        with pytest.raises(ConfigurationError):
            PrivateStackConfig(l2_sets=0)

    def test_rejects_l1_sets_without_ways(self):
        with pytest.raises(ConfigurationError):
            PrivateStackConfig(l1_sets=2, l1_ways=0)


class TestAccessPath:
    def test_cold_miss_goes_to_llc(self):
        result = make_stack().access(1, AccessType.READ)
        assert result.hit_level is None
        assert result.latency == 0

    def test_fill_then_l1_hit(self):
        stack = make_stack()
        stack.fill_from_llc(1, AccessType.READ)
        result = stack.access(1, AccessType.READ)
        assert result.hit_level == "L1"
        assert result.latency == stack.config.l1_hit_latency

    def test_l2_hit_after_l1_eviction(self):
        stack = make_stack(l1_sets=1, l1_ways=1, l2_sets=4, l2_ways=4)
        stack.fill_from_llc(0, AccessType.READ)
        stack.fill_from_llc(1, AccessType.READ)  # displaces 0 from tiny L1
        result = stack.access(0, AccessType.READ)
        assert result.hit_level == "L2"

    def test_instruction_accesses_use_l1i(self):
        stack = make_stack()
        stack.fill_from_llc(1, AccessType.INSTR)
        assert stack.l1i.contains(1)
        assert not stack.l1d.contains(1)

    def test_data_accesses_use_l1d(self):
        stack = make_stack()
        stack.fill_from_llc(1, AccessType.READ)
        assert stack.l1d.contains(1)
        assert not stack.l1i.contains(1)

    def test_no_l1_stack_hits_in_l2(self):
        stack = no_l1_stack()
        stack.fill_from_llc(1, AccessType.READ)
        assert stack.access(1, AccessType.READ).hit_level == "L2"


class TestDirtiness:
    def test_write_fill_is_dirty(self):
        stack = make_stack()
        stack.fill_from_llc(1, AccessType.WRITE)
        assert stack.is_dirty(1)

    def test_read_fill_is_clean(self):
        stack = make_stack()
        stack.fill_from_llc(1, AccessType.READ)
        assert not stack.is_dirty(1)

    def test_write_hit_dirties(self):
        stack = make_stack()
        stack.fill_from_llc(1, AccessType.READ)
        stack.access(1, AccessType.WRITE)
        assert stack.is_dirty(1)

    def test_l1_dirtiness_merges_down_on_l1_eviction(self):
        stack = make_stack(l1_sets=1, l1_ways=1, l2_sets=4, l2_ways=4)
        stack.fill_from_llc(0, AccessType.WRITE)  # dirty in L1 (and L2)
        stack.fill_from_llc(1, AccessType.READ)   # evicts 0 from L1
        assert stack.l2.is_dirty(0)


class TestL2EvictionAndInclusion:
    def test_l2_victim_reported_with_merged_dirtiness(self):
        stack = no_l1_stack(l2_sets=1, l2_ways=1)
        stack.fill_from_llc(0, AccessType.WRITE)
        result = stack.fill_from_llc(1, AccessType.READ)
        assert result.l2_victim is not None
        assert result.l2_victim.block == 0
        assert result.l2_victim.dirty

    def test_clean_l2_victim(self):
        stack = no_l1_stack(l2_sets=1, l2_ways=1)
        stack.fill_from_llc(0, AccessType.READ)
        result = stack.fill_from_llc(1, AccessType.READ)
        assert not result.l2_victim.dirty

    def test_l2_eviction_back_invalidates_l1(self):
        stack = make_stack(l1_sets=4, l1_ways=4, l2_sets=1, l2_ways=1)
        stack.fill_from_llc(0, AccessType.READ)
        stack.fill_from_llc(1, AccessType.READ)  # L2 evicts 0
        assert not stack.l1d.contains(0)
        stack.check_l1_inclusion()

    def test_l1_dirty_copy_merges_into_departing_victim(self):
        stack = make_stack(l1_sets=4, l1_ways=4, l2_sets=1, l2_ways=1)
        stack.fill_from_llc(0, AccessType.WRITE)
        result = stack.fill_from_llc(1, AccessType.READ)
        assert result.l2_victim.dirty

    def test_inclusion_invariant_after_mixed_traffic(self):
        stack = make_stack(l1_sets=1, l1_ways=2, l2_sets=2, l2_ways=2)
        for block, access in [
            (0, AccessType.WRITE),
            (1, AccessType.READ),
            (2, AccessType.WRITE),
            (3, AccessType.READ),
            (4, AccessType.WRITE),
        ]:
            stack.fill_from_llc(block, access)
        stack.check_l1_inclusion()


class TestInvalidateBlock:
    def test_invalidate_removes_everywhere(self):
        stack = make_stack()
        stack.fill_from_llc(1, AccessType.WRITE)
        removed = stack.invalidate_block(1)
        assert removed is not None and removed.dirty
        assert not stack.contains(1)

    def test_invalidate_absent_returns_none(self):
        assert make_stack().invalidate_block(42) is None

    def test_invalidate_merges_l1_dirtiness(self):
        stack = make_stack()
        stack.fill_from_llc(1, AccessType.READ)
        stack.access(1, AccessType.WRITE)  # dirty only in L1
        removed = stack.invalidate_block(1)
        assert removed.dirty

    def test_resident_blocks_tracks_l2(self):
        stack = make_stack()
        stack.fill_from_llc(1, AccessType.READ)
        stack.fill_from_llc(2, AccessType.READ)
        assert sorted(stack.resident_blocks()) == [1, 2]
