"""Unit tests for the common enumerations."""

import pytest

from repro.common.types import AccessType, EntryState, TransactionKind


class TestAccessType:
    def test_write_is_write(self):
        assert AccessType.WRITE.is_write

    def test_read_is_not_write(self):
        assert not AccessType.READ.is_write

    def test_instr_is_not_write(self):
        assert not AccessType.INSTR.is_write

    def test_instr_flag(self):
        assert AccessType.INSTR.is_instruction
        assert not AccessType.READ.is_instruction
        assert not AccessType.WRITE.is_instruction

    @pytest.mark.parametrize(
        "token,expected",
        [("R", AccessType.READ), ("W", AccessType.WRITE), ("I", AccessType.INSTR),
         ("r", AccessType.READ), ("w", AccessType.WRITE)],
    )
    def test_from_token(self, token, expected):
        assert AccessType.from_token(token) is expected

    def test_from_token_rejects_unknown(self):
        with pytest.raises(ValueError, match="X"):
            AccessType.from_token("X")


class TestEntryState:
    def test_three_states(self):
        assert {state.value for state in EntryState} == {
            "free",
            "valid",
            "pending-evict",
        }


class TestTransactionKind:
    def test_two_kinds(self):
        assert len(TransactionKind) == 2
