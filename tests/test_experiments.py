"""Integration tests for the experiment harnesses (Figures 7 and 8)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.configs import (
    PAPER_CORE_CAPACITY_LINES,
    build_system_for_notation,
    fig7_system,
    fig8_system,
)
from repro.experiments.fig7 import FIG7_CONFIGS, run_fig7
from repro.experiments.fig8 import SUBFIGURES, graded_workload, run_fig8
from repro.experiments.tables import render_table
from repro.llc.partition import PartitionKind


class TestConfigBuilders:
    def test_notation_string_accepted(self):
        config = build_system_for_notation("SS(1,16,4)", num_cores=4)
        assert config.num_cores == 4
        shared = config.build_partition_map().partition_of(0)
        assert shared.sequencer
        assert shared.num_sets == 1
        assert shared.num_ways == 16
        assert shared.cores == (0, 1, 2, 3)

    def test_p_notation_gives_disjoint_per_core_partitions(self):
        config = build_system_for_notation("P(2,16)", num_cores=4)
        pmap = config.build_partition_map()
        sets_used = [pmap.partition_of(core).sets for core in range(4)]
        flat = [s for sets in sets_used for s in sets]
        assert len(set(flat)) == 8  # 4 cores x 2 sets, all distinct

    def test_partial_sharing_gives_private_leftovers(self):
        config = build_system_for_notation("SS(1,16,2)", num_cores=4)
        pmap = config.build_partition_map()
        assert pmap.partition_of(0).name == "shared"
        assert pmap.partition_of(1).name == "shared"
        assert pmap.partition_of(2).name == "core2"
        assert not pmap.partition_of(2).sequencer

    def test_geometry_exhaustion_rejected(self):
        with pytest.raises(ConfigurationError, match="LLC has"):
            build_system_for_notation("P(16,16)", num_cores=4)  # needs 64 sets

    def test_ways_exhaustion_rejected(self):
        with pytest.raises(ConfigurationError):
            build_system_for_notation("SS(1,32,4)", num_cores=4)

    def test_fig7_systems(self):
        for kind in PartitionKind:
            config = fig7_system(kind)
            assert config.num_cores == 4
            assert config.llc_sets == 32 and config.llc_ways == 16
            part = config.build_partition_map().partition_of(0)
            assert part.num_sets == 1
            assert part.num_ways == 16

    def test_fig8_capacity_split(self):
        shared = fig8_system(PartitionKind.SS, 2, 4096)
        assert shared.build_partition_map().partition_of(0).capacity_lines == 64
        private = fig8_system(PartitionKind.P, 2, 4096)
        assert private.build_partition_map().partition_of(0).capacity_lines == 32

    def test_fig8_rejects_indivisible_capacity(self):
        with pytest.raises(ConfigurationError):
            fig8_system(PartitionKind.P, 3, 4096)

    def test_fig8_uses_buffered_self_writebacks(self):
        assert not fig8_system(PartitionKind.P, 2, 4096).self_writeback_in_slot

    def test_fig7_uses_in_slot_self_writebacks(self):
        assert fig7_system(PartitionKind.P).self_writeback_in_slot


class TestFig7Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(address_ranges=(1024, 4096), num_requests=120)

    def test_covers_all_configs_and_ranges(self, result):
        assert len(result.rows) == len(FIG7_CONFIGS) * 2

    def test_all_observations_within_bounds(self, result):
        assert result.all_within_bounds(), result.render()

    def test_analytical_values_match_paper(self, result):
        by_config = {row.config: row.analytical_wcl for row in result.rows}
        assert by_config["SS(1,16,4)"] == 5_000
        assert by_config["NSS(1,16,4)"] == 979_250
        assert by_config["P(1,16)"] == 450

    def test_private_partition_has_lowest_observed_wcl(self, result):
        assert result.max_observed("P(1,16)") <= result.max_observed("SS(1,16,4)")
        assert result.max_observed("P(1,16)") <= result.max_observed("NSS(1,16,4)")

    def test_render_mentions_configs(self, result):
        text = result.render()
        for config in FIG7_CONFIGS:
            assert config in text


class TestFig8Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8("8a", address_ranges=(1024, 2048, 4096), num_requests=250)

    def test_row_structure(self, result):
        assert result.subfigure == "8a"
        assert result.num_cores == 2
        assert result.capacity_bytes == 4096
        assert len(result.rows) == 3

    def test_ties_when_range_fits_private_partition(self, result):
        for row in result.rows_with_fit():
            assert row.ss_cycles == row.nss_cycles == row.p_cycles

    def test_ss_wins_beyond_private_partition(self, result):
        exceeding = result.rows_exceeding()
        assert exceeding
        for row in exceeding:
            assert row.ss_speedup_vs_p > 1.0

    def test_unknown_subfigure_rejected(self):
        with pytest.raises(KeyError):
            run_fig8("8z")

    def test_subfigure_parameters(self):
        assert SUBFIGURES["8a"] == (2, 4096)
        assert SUBFIGURES["8d"] == (4, 8192)

    def test_graded_workload_is_disjoint_and_graded(self):
        traces = graded_workload(4, 8192, num_requests=50, seed=1)
        footprints = [set(trace.addresses()) for trace in traces.values()]
        for i, first in enumerate(footprints):
            for second in footprints[i + 1 :]:
                assert not (first & second)
        spans = [max(fp) - min(fp) for fp in footprints]
        assert spans[0] > spans[1] >= spans[2]

    def test_graded_workload_independent_of_partition_config(self):
        # Section 5: same addresses across partitioned configurations.
        first = graded_workload(2, 4096, 50, seed=3)
        second = graded_workload(2, 4096, 50, seed=3)
        assert first == second


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].endswith("1")

    def test_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        assert "1.50" in render_table(["x"], [[1.5]])

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
