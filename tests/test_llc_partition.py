"""Unit tests for partition specs, maps and the SS/NSS/P notation."""

import pytest

from repro.common.errors import PartitionError
from repro.llc.partition import (
    PartitionKind,
    PartitionMap,
    PartitionNotation,
    PartitionSpec,
)


def spec(name="p", sets=(0,), ways=(0, 4), cores=(0,), sequencer=False):
    return PartitionSpec(name, list(sets), ways, cores, sequencer)


class TestPartitionSpec:
    def test_geometry_properties(self):
        part = spec(sets=(0, 1, 2), ways=(4, 8), cores=(0, 1))
        assert part.num_sets == 3
        assert part.num_ways == 4
        assert part.num_cores == 2
        assert part.capacity_lines == 12
        assert part.capacity_bytes(64) == 768

    def test_is_shared(self):
        assert spec(cores=(0, 1)).is_shared
        assert not spec(cores=(0,)).is_shared

    def test_fold_set_round_robin(self):
        part = spec(sets=(3, 7), ways=(0, 2))
        assert part.fold_set(0) == 3
        assert part.fold_set(1) == 7
        assert part.fold_set(2) == 3

    def test_ways_range(self):
        assert list(spec(ways=(2, 5)).ways()) == [2, 3, 4]

    def test_cells_enumerates_rectangle(self):
        part = spec(sets=(0, 1), ways=(0, 2))
        assert sorted(part.cells()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_rejects_empty_sets(self):
        with pytest.raises(PartitionError):
            spec(sets=())

    def test_rejects_duplicate_sets(self):
        with pytest.raises(PartitionError):
            spec(sets=(0, 0))

    def test_rejects_bad_way_range(self):
        with pytest.raises(PartitionError):
            spec(ways=(4, 4))
        with pytest.raises(PartitionError):
            spec(ways=(5, 3))

    def test_rejects_no_cores(self):
        with pytest.raises(PartitionError):
            spec(cores=())

    def test_rejects_duplicate_cores(self):
        with pytest.raises(PartitionError):
            spec(cores=(0, 0))

    def test_rejects_empty_name(self):
        with pytest.raises(PartitionError):
            spec(name="")


class TestPartitionMap:
    def test_partition_of(self):
        parts = [
            spec(name="a", sets=(0,), ways=(0, 2), cores=(0,)),
            spec(name="b", sets=(1,), ways=(0, 2), cores=(1, 2)),
        ]
        pmap = PartitionMap(parts, num_sets=2, num_ways=2)
        assert pmap.partition_of(0).name == "a"
        assert pmap.partition_of(2).name == "b"
        assert pmap.cores == (0, 1, 2)

    def test_unmapped_core_rejected(self):
        pmap = PartitionMap([spec()], num_sets=1, num_ways=4)
        with pytest.raises(PartitionError):
            pmap.partition_of(9)

    def test_has_core(self):
        pmap = PartitionMap([spec()], num_sets=1, num_ways=4)
        assert pmap.has_core(0)
        assert not pmap.has_core(1)

    def test_overlap_same_cell_rejected(self):
        parts = [
            spec(name="a", sets=(0,), ways=(0, 2), cores=(0,)),
            spec(name="b", sets=(0,), ways=(1, 3), cores=(1,)),
        ]
        with pytest.raises(PartitionError, match="overlap"):
            PartitionMap(parts, num_sets=1, num_ways=4)

    def test_disjoint_ways_same_set_allowed(self):
        parts = [
            spec(name="a", sets=(0,), ways=(0, 2), cores=(0,)),
            spec(name="b", sets=(0,), ways=(2, 4), cores=(1,)),
        ]
        pmap = PartitionMap(parts, num_sets=1, num_ways=4)
        assert pmap.utilized_lines() == 4

    def test_core_in_two_partitions_rejected(self):
        parts = [
            spec(name="a", sets=(0,), ways=(0, 2), cores=(0,)),
            spec(name="b", sets=(1,), ways=(0, 2), cores=(0,)),
        ]
        with pytest.raises(PartitionError):
            PartitionMap(parts, num_sets=2, num_ways=2)

    def test_set_beyond_geometry_rejected(self):
        with pytest.raises(PartitionError):
            PartitionMap([spec(sets=(5,))], num_sets=4, num_ways=4)

    def test_way_beyond_geometry_rejected(self):
        with pytest.raises(PartitionError):
            PartitionMap([spec(ways=(0, 8))], num_sets=4, num_ways=4)

    def test_duplicate_names_rejected(self):
        parts = [
            spec(name="a", sets=(0,), cores=(0,)),
            spec(name="a", sets=(1,), cores=(1,)),
        ]
        with pytest.raises(PartitionError):
            PartitionMap(parts, num_sets=2, num_ways=4)

    def test_empty_map_rejected(self):
        with pytest.raises(PartitionError):
            PartitionMap([], num_sets=1, num_ways=1)


class TestPartitionNotation:
    def test_parse_ss(self):
        notation = PartitionNotation.parse("SS(1,16,4)")
        assert notation.kind is PartitionKind.SS
        assert (notation.sets, notation.ways, notation.cores) == (1, 16, 4)
        assert notation.sequencer

    def test_parse_nss(self):
        notation = PartitionNotation.parse("NSS(2,8,3)")
        assert notation.kind is PartitionKind.NSS
        assert not notation.sequencer

    def test_parse_p(self):
        notation = PartitionNotation.parse("P(1,16)")
        assert notation.kind is PartitionKind.P
        assert notation.cores == 1

    def test_parse_tolerates_whitespace_and_case(self):
        assert PartitionNotation.parse(" ss( 1 , 16 , 4 ) ").kind is PartitionKind.SS

    def test_p_with_core_count_rejected(self):
        with pytest.raises(PartitionError):
            PartitionNotation.parse("P(1,16,4)")

    def test_ss_without_core_count_rejected(self):
        with pytest.raises(PartitionError):
            PartitionNotation.parse("SS(1,16)")

    def test_garbage_rejected(self):
        with pytest.raises(PartitionError):
            PartitionNotation.parse("shared(1,2)")

    def test_zero_sets_rejected(self):
        with pytest.raises(PartitionError):
            PartitionNotation.parse("SS(0,16,4)")

    def test_str_roundtrip(self):
        for text in ("SS(1,16,4)", "NSS(2,8,3)", "P(1,16)"):
            assert str(PartitionNotation.parse(text)) == text
