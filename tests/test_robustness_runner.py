"""The crash-tolerant campaign runner: retry, timeout, quarantine, resume."""

import json
import time

import pytest

from repro.common.errors import (
    CampaignError,
    ConfigurationError,
    ReproError,
    SimulationError,
    TaskTimeoutError,
)
from repro.robustness.runner import (
    CampaignRunner,
    RetryPolicy,
    RunManifest,
    run_all_robust,
    sweep_seeds_robust,
)
from repro.sim.sweeps import sweep_seeds
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)
from sim_helpers import small_config


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.5, backoff_factor=3.0)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.5
        assert policy.delay(3) == 4.5

    def test_rejects_zero_attempts(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)


class TestRetryAndQuarantine:
    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient blip")
            return "ok"

        runner = CampaignRunner(
            manifest_path=tmp_path / "m.json",
            retry=RetryPolicy(max_attempts=3, backoff_base=0.1),
            sleep=sleeps.append,
        )
        result = runner.run([("flaky", flaky)])
        assert result.all_ok
        assert result.outcomes[0].attempts == 3
        assert sleeps == [0.1, 0.2]

    def test_transient_failure_exhausts_attempts(self, tmp_path):
        def always_down():
            raise OSError("still down")

        runner = CampaignRunner(
            manifest_path=tmp_path / "m.json",
            retry=RetryPolicy(max_attempts=2, backoff_base=0),
            sleep=lambda _s: None,
        )
        result = runner.run([("down", always_down)])
        assert not result.all_ok
        outcome = result.outcomes[0]
        assert outcome.status == "quarantined"
        assert outcome.attempts == 2
        assert outcome.error_type == "OSError"

    def test_model_errors_are_never_retried(self, tmp_path):
        attempts = []

        def deterministic():
            attempts.append(1)
            raise SimulationError("model violation — retrying cannot help")

        runner = CampaignRunner(
            manifest_path=tmp_path / "m.json",
            retry=RetryPolicy(max_attempts=5, backoff_base=0),
            transient_types=(OSError, ReproError),
            sleep=lambda _s: None,
        )
        result = runner.run([("det", deterministic)])
        assert len(attempts) == 1
        assert result.outcomes[0].status == "quarantined"

    def test_quarantine_does_not_stop_the_campaign(self, tmp_path):
        order = []

        def bad():
            order.append("bad")
            raise ValueError("boom")

        def good():
            order.append("good")
            return 42

        runner = CampaignRunner(
            manifest_path=tmp_path / "m.json", retry=RetryPolicy(max_attempts=1)
        )
        result = runner.run([("bad", bad), ("good", good)])
        assert order == ["bad", "good"]
        assert [o.status for o in result.outcomes] == ["quarantined", "done"]
        assert [o.name for o in result.quarantined] == ["bad"]
        assert not result.all_ok

    def test_duplicate_task_names_rejected(self):
        runner = CampaignRunner()
        with pytest.raises(ConfigurationError):
            runner.run([("a", lambda: 1), ("a", lambda: 2)])


class TestTimeout:
    def test_hung_task_is_quarantined_not_retried(self, tmp_path):
        attempts = []

        def hang():
            attempts.append(1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                pass

        runner = CampaignRunner(
            manifest_path=tmp_path / "m.json",
            timeout=0.2,
            retry=RetryPolicy(max_attempts=3, backoff_base=0),
        )
        started = time.monotonic()
        result = runner.run([("hang", hang), ("after", lambda: "ran")])
        assert time.monotonic() - started < 4.0
        assert len(attempts) == 1
        assert result.outcomes[0].status == "quarantined"
        assert result.outcomes[0].error_type == "TaskTimeoutError"
        assert result.outcomes[1].status == "done"

    def test_fast_task_unaffected_by_timeout(self, tmp_path):
        runner = CampaignRunner(manifest_path=tmp_path / "m.json", timeout=5.0)
        result = runner.run([("quick", lambda: "ok")])
        assert result.all_ok

    def test_timeout_error_is_a_campaign_error(self):
        assert issubclass(TaskTimeoutError, CampaignError)

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(timeout=0)


class TestManifestAndResume:
    def test_manifest_written_after_every_task(self, tmp_path):
        path = tmp_path / "m.json"
        seen = []

        def spy():
            seen.append(json.loads(path.read_text()) if path.exists() else None)
            return "ok"

        runner = CampaignRunner(manifest_path=path)
        runner.run([("first", lambda: 1), ("second", spy)])
        # By the time 'second' starts, 'first' is already checkpointed.
        assert seen[0]["tasks"]["first"]["status"] == "done"

    def test_resume_skips_done_tasks(self, tmp_path):
        path = tmp_path / "m.json"
        runs = []
        tasks = [
            ("a", lambda: runs.append("a") or "a"),
            ("b", lambda: runs.append("b") or "b"),
        ]
        CampaignRunner(manifest_path=path).run(tasks)
        result = CampaignRunner(manifest_path=path).run(tasks)
        assert runs == ["a", "b"]
        assert [o.status for o in result.outcomes] == ["skipped", "skipped"]
        assert result.all_ok

    def test_no_resume_reruns_everything(self, tmp_path):
        path = tmp_path / "m.json"
        runs = []
        tasks = [("a", lambda: runs.append("a"))]
        CampaignRunner(manifest_path=path).run(tasks)
        CampaignRunner(manifest_path=path).run(tasks, resume=False)
        assert runs == ["a", "a"]

    def test_quarantined_tasks_are_retried_on_resume(self, tmp_path):
        path = tmp_path / "m.json"
        state = {"fixed": False}

        def sometimes():
            if not state["fixed"]:
                raise ValueError("broken this run")
            return "ok"

        runner = CampaignRunner(
            manifest_path=path, retry=RetryPolicy(max_attempts=1)
        )
        first = runner.run([("flappy", sometimes)])
        assert not first.all_ok
        state["fixed"] = True
        second = CampaignRunner(
            manifest_path=path, retry=RetryPolicy(max_attempts=1)
        ).run([("flappy", sometimes)])
        assert second.all_ok
        assert second.outcomes[0].status == "done"

    def test_malformed_manifest_is_a_campaign_error(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("not json at all {")
        with pytest.raises(CampaignError, match="unreadable"):
            RunManifest.load(path)

    def test_wrong_version_is_a_campaign_error(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"version": 999, "tasks": {}}))
        with pytest.raises(CampaignError, match="version"):
            RunManifest.load(path)

    def test_killed_then_resumed_matches_uninterrupted(self, tmp_path):
        """The acceptance criterion: kill mid-campaign, resume, compare."""

        def make_tasks(kill_on_c):
            state = {"killed": False}

            def c():
                if kill_on_c and not state["killed"]:
                    state["killed"] = True
                    raise KeyboardInterrupt
                return {"passed": True, "checks": {"c-ok": True}}

            return [
                ("a", lambda: {"passed": True, "checks": {"a-ok": True}}),
                ("b", lambda: {"passed": False, "checks": {"b-ok": False}}),
                ("c", c),
                ("d", lambda: {"passed": True, "checks": {"d-ok": True}}),
            ]

        def payload(result):
            if isinstance(result, dict) and "checks" in result:
                return {"passed": result["passed"], "checks": result["checks"]}
            return None

        # Uninterrupted reference run.
        ref_path = tmp_path / "ref.json"
        CampaignRunner(
            manifest_path=ref_path,
            retry=RetryPolicy(max_attempts=1),
            payload_of=payload,
        ).run(make_tasks(kill_on_c=False))

        # Killed at task 'c', then resumed to completion.
        path = tmp_path / "m.json"
        tasks = make_tasks(kill_on_c=True)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(
                manifest_path=path,
                retry=RetryPolicy(max_attempts=1),
                payload_of=payload,
            ).run(tasks)
        partial = RunManifest.load(path)
        assert partial.is_done("a")
        assert "c" not in partial.tasks or not partial.is_done("c")

        resumed = CampaignRunner(
            manifest_path=path,
            retry=RetryPolicy(max_attempts=1),
            payload_of=payload,
        ).run(tasks)
        # 'b' completed before the kill (its checks failing is a result,
        # not a crash), so only 'c' and 'd' actually run on resume.
        assert [o.status for o in resumed.outcomes] == [
            "skipped",
            "skipped",
            "done",
            "done",
        ]
        assert (
            RunManifest.load(path).results()
            == RunManifest.load(ref_path).results()
        )


class TestManifestDurability:
    def test_save_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "m.json"
        CampaignRunner(manifest_path=path).run([("a", lambda: 1)])
        assert path.exists()
        assert not (tmp_path / "m.json.tmp").exists()

    def test_load_removes_stale_tmp_leftover(self, tmp_path):
        path = tmp_path / "m.json"
        stale = tmp_path / "m.json.tmp"
        stale.write_text("torn half-write from a crashed checkpoint")
        manifest = RunManifest.load(path)
        assert not stale.exists()
        assert manifest.tasks == {}

    def test_load_removes_stale_tmp_next_to_real_manifest(self, tmp_path):
        path = tmp_path / "m.json"
        CampaignRunner(manifest_path=path).run([("a", lambda: 1)])
        stale = tmp_path / "m.json.tmp"
        stale.write_text("torn")
        manifest = RunManifest.load(path)
        assert not stale.exists()
        assert manifest.is_done("a")


class TestTimeoutUnenforceable:
    def test_off_main_thread_warns_once_and_flags_entries(self, tmp_path):
        import threading
        import warnings

        path = tmp_path / "m.json"
        captured = []

        def work():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                runner = CampaignRunner(manifest_path=path, timeout=5.0)
                runner.run([("a", lambda: 1), ("b", lambda: 2)])
                captured.extend(caught)

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        loud = [w for w in captured if issubclass(w.category, RuntimeWarning)]
        # One loud warning per runner, not one per task.
        assert len(loud) == 1
        assert "cannot be enforced" in str(loud[0].message)
        manifest = RunManifest.load(path)
        assert manifest.tasks["a"]["timeout_enforced"] is False
        assert manifest.tasks["b"]["timeout_enforced"] is False
        # The tasks still ran (untimed) to completion.
        assert manifest.is_done("a") and manifest.is_done("b")

    def test_main_thread_entries_carry_no_flag(self, tmp_path):
        path = tmp_path / "m.json"
        CampaignRunner(manifest_path=path, timeout=5.0).run([("a", lambda: 1)])
        assert "timeout_enforced" not in RunManifest.load(path).tasks["a"]

    def test_no_timeout_means_no_warning_off_main_thread(self, tmp_path):
        import threading
        import warnings

        captured = []

        def work():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                CampaignRunner(manifest_path=tmp_path / "m.json").run(
                    [("a", lambda: 1)]
                )
                captured.extend(caught)

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert not [
            w for w in captured if issubclass(w.category, RuntimeWarning)
        ]


class TestParallelKeyboardInterrupt:
    def test_parallel_interrupt_saves_manifest_and_resumes(
        self, tmp_path, monkeypatch
    ):
        from repro.sim import parallel as parallel_mod
        from repro.sim.parallel import PoolResult

        tasks = [(f"t{i}", lambda i=i: {"value": i}) for i in range(4)]
        ref_path = tmp_path / "ref.json"
        CampaignRunner(manifest_path=ref_path).run(tasks)

        # A pool that delivers one completion, then takes the interrupt
        # in the parent (workers never propagate KeyboardInterrupt —
        # the pool ships it back as a quarantined error instead).
        def interrupted_run(self, pool_tasks, on_result):
            name, thunk = pool_tasks[0]
            on_result(
                PoolResult(
                    index=0,
                    name=name,
                    status="done",
                    value=thunk(),
                    attempts=1,
                    elapsed_seconds=0.0,
                )
            )
            raise KeyboardInterrupt

        monkeypatch.setattr(parallel_mod, "parallel_available", lambda: True)
        monkeypatch.setattr(parallel_mod.TaskPool, "run", interrupted_run)
        path = tmp_path / "m.json"
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(manifest_path=path, jobs=2).run(tasks)

        # The manifest is loadable and holds exactly the finished task.
        partial = RunManifest.load(path)
        assert partial.is_done("t0")
        assert not partial.is_done("t3")

        # Resuming (serially, to keep the pool out of it) completes the
        # campaign with results identical to the uninterrupted run.
        monkeypatch.undo()
        resumed = CampaignRunner(manifest_path=path).run(tasks)
        assert [o.status for o in resumed.outcomes] == [
            "skipped",
            "done",
            "done",
            "done",
        ]
        assert (
            RunManifest.load(path).results()
            == RunManifest.load(ref_path).results()
        )


class TestRobustSweep:
    CONFIG = small_config(num_cores=2)

    @staticmethod
    def trace_factory(seed):
        workload = SyntheticWorkloadConfig(
            num_requests=20, address_range_size=512, seed=seed
        )
        return generate_disjoint_workload(workload, [0, 1])

    def test_matches_plain_sweep_when_healthy(self):
        seeds = [1, 2, 3]
        plain = sweep_seeds(self.CONFIG, self.trace_factory, seeds)
        robust = sweep_seeds_robust(self.CONFIG, self.trace_factory, seeds)
        assert robust.complete
        assert robust.result.seeds == plain.seeds
        assert robust.result.observed_wcls == plain.observed_wcls
        assert robust.result.makespans == plain.makespans

    def test_failing_seed_is_quarantined_not_fatal(self):
        def check(report):
            # Seed-independent state makes seed 2 fail deterministically.
            assert report.makespan != report.makespan or True

        def picky_check(report):
            raise AssertionError("bound violated")

        def selective_factory(seed):
            if seed == 2:
                raise SimulationError("seed 2 workload is broken")
            return self.trace_factory(seed)

        robust = sweep_seeds_robust(
            self.CONFIG, selective_factory, [1, 2, 3]
        )
        assert robust.quarantined_seeds == (2,)
        assert robust.completed_seeds == (1, 3)
        assert not robust.complete
        assert robust.result is not None
        assert len(robust.result.observed_wcls) == 2

    def test_all_seeds_failing_yields_no_result(self):
        def bad_factory(seed):
            raise SimulationError("nothing works")

        robust = sweep_seeds_robust(self.CONFIG, bad_factory, [1, 2])
        assert robust.result is None
        assert robust.quarantined_seeds == (1, 2)


class TestRunAllRobust:
    @staticmethod
    def fake_steps(num_requests=300, tightness_repeats=25, **kwargs):
        class FakeArtifact:
            def __init__(self, name, passed):
                self.name = name
                self.table = f"table of {name}"
                self.checks = {"ok": passed}
                self.passed = passed

        return [
            ("alpha", lambda: FakeArtifact("alpha", True)),
            ("beta", lambda: FakeArtifact("beta", False)),
        ]

    def test_writes_artifacts_manifest_and_summary(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(runner_mod, "artifact_steps", self.fake_steps)
        out = tmp_path / "results"
        result = run_all_robust(out_dir=out)
        assert (out / "alpha.txt").read_text() == "table of alpha\n"
        assert (out / "manifest.json").exists()
        summary = json.loads((out / "summary.json").read_text())
        assert summary == {"alpha": {"ok": True}, "beta": {"ok": False}}
        assert "PASS  alpha" in (out / "SUMMARY.txt").read_text()
        assert "FAIL  beta" in (out / "SUMMARY.txt").read_text()
        # beta completed but its checks failed: the campaign is not ok.
        assert not result.quarantined
        assert not result.all_ok

    def test_cli_all_exit_codes(self, tmp_path, monkeypatch, capsys):
        import repro.experiments.runner as runner_mod
        from repro.cli import main

        monkeypatch.setattr(runner_mod, "artifact_steps", self.fake_steps)
        # A failing artifact check → non-zero.
        assert main(["all", "--out", str(tmp_path / "r1")]) == 1

        def green_steps(num_requests=300, tightness_repeats=25, **kwargs):
            return [self.fake_steps()[0]]

        monkeypatch.setattr(runner_mod, "artifact_steps", green_steps)
        assert main(["all", "--out", str(tmp_path / "r2")]) == 0

        def crashing_steps(num_requests=300, tightness_repeats=25, **kwargs):
            def crash():
                raise RuntimeError("artifact exploded")

            return [("boom", crash)]

        # A quarantined artifact → non-zero, with an error on stderr.
        monkeypatch.setattr(runner_mod, "artifact_steps", crashing_steps)
        assert main(["all", "--out", str(tmp_path / "r3")]) == 1
        assert "quarantined" in capsys.readouterr().err

    def test_cli_all_resume_skips_done_artifacts(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod
        from repro.cli import main

        calls = []

        def counting_steps(num_requests=300, tightness_repeats=25, **kwargs):
            class FakeArtifact:
                name = "alpha"
                table = "t"
                checks = {"ok": True}
                passed = True

            def build():
                calls.append(1)
                return FakeArtifact()

            return [("alpha", build)]

        monkeypatch.setattr(runner_mod, "artifact_steps", counting_steps)
        out = str(tmp_path / "r")
        assert main(["all", "--out", out]) == 0
        assert main(["all", "--out", out]) == 0
        assert len(calls) == 1  # second invocation resumed
        assert main(["all", "--out", out, "--no-resume"]) == 0
        assert len(calls) == 2
