"""Exhaustive fault-schedule sweep over a miniature campaign.

The acceptance bar for the I/O fault layer: inject a fault at the k-th
seam operation for *every* k of a campaign that exercises every
persistence store (result cache, auto-checkpoints, report export,
metrics export, manifest), and prove that

* no torn artifact and no stale ``.tmp`` sibling ever survives,
* every surviving artifact is byte-identical to the clean run's,
* outcomes match the durability class — a single transient fault is
  absorbed everywhere (essential retry / best-effort degradation),
  a persistent essential fault fails loudly with a typed error, a
  persistent best-effort fault degrades and the run completes with
  byte-identical simulation results,
* once the fault clears, re-running over the same directory completes
  the campaign with byte-identical final artifacts.
"""

import json
import random
from pathlib import Path

import pytest

from sim_helpers import small_config, write_trace_of

from repro.common import fileio
from repro.common.errors import ObservabilityError, PersistenceError
from repro.common.fileio import persist_text
from repro.obs.collect import collect_metrics
from repro.obs.exporters import write_metrics
from repro.robustness.checkpoint import (
    clear_auto_checkpoints,
    install_auto_checkpoints,
)
from repro.robustness.iofault import (
    IoFaultKind,
    IoFaultPlan,
    IoFaultSpec,
    io_faults,
    record_io_operations,
)
from repro.sim.cache import clear_result_cache, install_result_cache
from repro.sim.export import write_report_json
from repro.sim.simulator import simulate


@pytest.fixture(autouse=True)
def _fresh_io_state():
    fileio.reset_io_state()
    fileio.set_essential_retry(fileio.EssentialRetryPolicy(backoff_base=0.0))
    yield
    fileio.set_essential_retry(fileio.EssentialRetryPolicy())
    fileio.reset_io_state()


def _workload():
    rng = random.Random(7)
    return {
        core: write_trace_of([rng.randrange(24) for _ in range(40)])
        for core in (0, 1)
    }


def run_campaign(root: Path, config, traces):
    """A tiny end-to-end campaign touching every persistence store.

    Two simulations (a cold computed run and a disk cache hit) under the
    result cache and auto-checkpoint policies, then the three essential
    artifacts a real campaign ends with: the report JSON, the metrics
    export and a manifest.  Returns the first report's latencies.
    """
    cache = install_result_cache(root / "cache")
    install_auto_checkpoints(root / "ckpts", every_slots=32)
    try:
        first = simulate(config, traces)
        cache._memo.clear()  # the second call must hit the disk entry
        again = simulate(config, traces)
        assert again.latencies() == first.latencies()
        write_report_json(first, root / "report.json")
        write_metrics(
            collect_metrics(first, config.slot_width), root / "metrics.jsonl"
        )
        persist_text(
            root / "manifest.json",
            json.dumps(
                {
                    "observed_wcl": first.observed_wcl(),
                    "latencies": first.latencies(),
                },
                sort_keys=True,
            )
            + "\n",
            site="manifest",
        )
    finally:
        clear_result_cache()
        clear_auto_checkpoints()
    return first.latencies()


def snapshot(root: Path):
    """Every file under ``root`` as {relative path: bytes}."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def assert_no_tmp(root: Path, context: str):
    orphans = [str(p) for p in root.rglob("*.tmp")]
    assert not orphans, f"{context}: stale .tmp artifacts survived: {orphans}"


def assert_surviving_artifacts_clean(root: Path, reference_files, context: str):
    """Every file present is byte-identical to the clean run's copy."""
    for relpath, data in snapshot(root).items():
        assert relpath in reference_files, (
            f"{context}: unexpected artifact {relpath} "
            "(the clean campaign never writes it)"
        )
        assert data == reference_files[relpath], (
            f"{context}: artifact {relpath} differs from the clean "
            "campaign's bytes (torn or stale write survived)"
        )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The clean campaign: its artifacts, latencies and seam op stream."""
    fileio.reset_io_state()
    fileio.set_essential_retry(fileio.EssentialRetryPolicy(backoff_base=0.0))
    config = small_config()
    traces = _workload()
    root = tmp_path_factory.mktemp("reference")
    try:
        latencies = run_campaign(root, config, traces)
        files = snapshot(root)
        recorded_root = tmp_path_factory.mktemp("recorded")
        with record_io_operations() as recorder:
            assert run_campaign(recorded_root, config, traces) == latencies
        operations = list(recorder.operations)
    finally:
        fileio.set_essential_retry(fileio.EssentialRetryPolicy())
        fileio.reset_io_state()
    assert snapshot(recorded_root) == files, (
        "the campaign is not deterministic across directories; the sweep's "
        "byte comparisons would be meaningless"
    )
    return {
        "config": config,
        "traces": traces,
        "latencies": latencies,
        "files": files,
        "operations": operations,
    }


def test_campaign_exercises_every_store_and_is_bounded(reference):
    # The sweep below replays the campaign once per operation; make sure
    # that is (a) exhaustive over the stores and (b) cheap enough.
    sites = {op.site for op in reference["operations"]}
    assert {
        "result-cache",
        "auto-checkpoint",
        "report-export",
        "metrics-export",
        "manifest",
    } <= sites
    ops = {op.op for op in reference["operations"]}
    assert {"open", "write", "fsync", "replace", "fsync-dir", "read"} <= ops
    assert 10 <= len(reference["operations"]) <= 300


def test_single_fault_at_every_operation_is_absorbed(tmp_path, reference):
    """EIO at the k-th seam op, for every k: the campaign still completes
    with byte-identical artifacts — essential stores absorb the fault by
    retrying, best-effort stores degrade and recompute."""
    total = len(reference["operations"])
    for k in range(1, total + 1):
        fileio.reset_io_state()
        root = tmp_path / f"k{k}"
        spec = IoFaultSpec(kind=IoFaultKind.EIO, nth=k, count=1)
        with io_faults(IoFaultPlan([spec])) as plan:
            latencies = run_campaign(
                root, reference["config"], reference["traces"]
            )
        context = f"fault at op {k}/{total}"
        assert latencies == reference["latencies"], context
        assert_no_tmp(root, context)
        assert_surviving_artifacts_clean(root, reference["files"], context)
        # Every essential artifact made it to disk despite the fault.
        for artifact in ("report.json", "metrics.jsonl", "manifest.json"):
            assert (root / artifact).read_bytes() == reference["files"][
                artifact
            ], f"{context}: {artifact} bytes differ"
        assert plan.fired_count >= 1, (
            f"{context}: the fault never fired — the sweep is not "
            "covering the operation it claims to"
        )


def test_short_write_at_every_write_op_leaves_no_torn_artifact(
    tmp_path, reference
):
    """A partial write (half the bytes reach the file, then ENOSPC) at
    every write position: the staged temp file is discarded, never
    promoted, and the campaign still completes byte-identically."""
    writes = sum(1 for op in reference["operations"] if op.op == "write")
    assert writes >= 5
    for j in range(1, writes + 1):
        fileio.reset_io_state()
        root = tmp_path / f"w{j}"
        spec = IoFaultSpec(kind=IoFaultKind.SHORT_WRITE, nth=j, count=1)
        with io_faults(IoFaultPlan([spec])):
            latencies = run_campaign(
                root, reference["config"], reference["traces"]
            )
        context = f"short write at write op {j}/{writes}"
        assert latencies == reference["latencies"], context
        assert_no_tmp(root, context)
        assert_surviving_artifacts_clean(root, reference["files"], context)


@pytest.mark.parametrize(
    "site, error",
    [
        ("report-export", PersistenceError),
        ("manifest", PersistenceError),
        ("metrics-export", ObservabilityError),
    ],
)
def test_persistent_essential_fault_fails_loudly(
    tmp_path, reference, site, error
):
    spec = IoFaultSpec(kind=IoFaultKind.EIO, nth=1, count=None, site=site)
    with io_faults(IoFaultPlan([spec])):
        with pytest.raises(error):
            run_campaign(tmp_path, reference["config"], reference["traces"])
    context = f"persistent fault at essential site {site!r}"
    assert_no_tmp(tmp_path, context)
    assert_surviving_artifacts_clean(tmp_path, reference["files"], context)
    # The faulted artifact itself never appeared half-written.
    faulted = {
        "report-export": "report.json",
        "manifest": "manifest.json",
        "metrics-export": "metrics.jsonl",
    }[site]
    assert not (tmp_path / faulted).exists(), context


@pytest.mark.parametrize("site", ["result-cache", "auto-checkpoint"])
def test_persistent_best_effort_fault_degrades_and_completes(
    tmp_path, reference, site
):
    spec = IoFaultSpec(kind=IoFaultKind.ENOSPC, nth=1, count=None, site=site)
    with io_faults(IoFaultPlan([spec])):
        latencies = run_campaign(
            tmp_path, reference["config"], reference["traces"]
        )
    context = f"persistent fault at best-effort site {site!r}"
    assert latencies == reference["latencies"], context
    assert fileio.io_metrics().counter(f"io.degraded.{site}").value >= 1
    assert_no_tmp(tmp_path, context)
    assert_surviving_artifacts_clean(tmp_path, reference["files"], context)
    for artifact in ("report.json", "metrics.jsonl", "manifest.json"):
        assert (tmp_path / artifact).read_bytes() == reference["files"][
            artifact
        ], f"{context}: {artifact} bytes differ"


def test_resume_after_fault_clears_completes_the_campaign(
    tmp_path, reference
):
    """A campaign killed by a persistent essential fault resumes over the
    same directory once the fault clears, ending with the exact artifact
    bytes of a never-faulted campaign."""
    spec = IoFaultSpec(
        kind=IoFaultKind.EIO, nth=1, count=None, site="report-export"
    )
    with io_faults(IoFaultPlan([spec])):
        with pytest.raises(PersistenceError):
            run_campaign(tmp_path, reference["config"], reference["traces"])
    surviving = set(snapshot(tmp_path))
    fileio.reset_io_state()
    fileio.set_essential_retry(fileio.EssentialRetryPolicy(backoff_base=0.0))

    latencies = run_campaign(
        tmp_path, reference["config"], reference["traces"]
    )
    assert latencies == reference["latencies"]
    assert snapshot(tmp_path) == reference["files"]
    # The resume actually reused the failed run's surviving cache entry
    # rather than starting from nothing.
    assert any(name.startswith("cache/") for name in surviving)
