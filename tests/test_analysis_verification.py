"""Tests for the automatic bound-compliance verifier."""

import pytest

from repro.analysis.verification import (
    assert_bounds,
    derive_core_bounds,
    verify_bounds,
)
from repro.bus.schedule import TdmSchedule
from repro.experiments.configs import build_system_for_notation, fig7_system
from repro.llc.partition import PartitionKind
from repro.sim.simulator import simulate
from repro.workloads.adversarial import conflict_storm_traces
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

from sim_helpers import private_partitions, shared_partition, small_config


class TestDeriveCoreBounds:
    def test_fig7_ss_bounds(self):
        config = fig7_system(PartitionKind.SS)
        bounds = derive_core_bounds(config)
        for core in range(4):
            assert bounds[core].rule == "theorem-4.8"
            assert bounds[core].cycles == 5_000

    def test_fig7_nss_bounds(self):
        config = fig7_system(PartitionKind.NSS)
        bounds = derive_core_bounds(config)
        assert bounds[0].rule == "theorem-4.7"
        assert bounds[0].cycles == 979_250

    def test_fig7_private_bounds(self):
        config = fig7_system(PartitionKind.P)
        bounds = derive_core_bounds(config)
        for core in range(4):
            assert bounds[core].rule == "private"
            assert bounds[core].cycles == 450

    def test_mixed_layout(self):
        config = build_system_for_notation("SS(1,16,2)", num_cores=4)
        bounds = derive_core_bounds(config)
        assert bounds[0].rule == "theorem-4.8"
        assert bounds[2].rule == "private"

    def test_shared_partition_under_multi_slot_tdm_is_unbounded(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=2)],
            llc_sets=1,
            llc_ways=2,
            schedule=TdmSchedule((0, 1, 1), 50),
        )
        bounds = derive_core_bounds(config)
        assert bounds[0].rule == "unbounded"
        assert bounds[0].cycles is None

    def test_private_partition_under_multi_slot_tdm_uses_worst_gap(self):
        config = small_config(
            num_cores=2,
            partitions=private_partitions(2, sets_per_core=1, ways=4),
            llc_sets=2,
            llc_ways=4,
            schedule=TdmSchedule((0, 1, 1), 50),
        )
        bounds = derive_core_bounds(config)
        # Core 0's worst gap is 3 slots -> (2*3+1)*50.
        assert bounds[0].cycles == 350
        # Core 1's worst gap is 2 slots (between its slot 2 and next
        # period's slot 1).
        assert bounds[1].cycles == 250


class TestVerifyBounds:
    def test_clean_storm_has_no_violations(self):
        config = fig7_system(PartitionKind.SS)
        traces = conflict_storm_traces(
            cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=20, repeats=15
        )
        report = simulate(config, traces)
        assert verify_bounds(report, config) == []
        assert_bounds(report, config)  # must not raise

    def test_synthetic_workload_complies(self):
        config = fig7_system(PartitionKind.NSS)
        workload = SyntheticWorkloadConfig(num_requests=150, address_range_size=4096)
        traces = generate_disjoint_workload(workload, range(4))
        report = simulate(config, traces)
        assert_bounds(report, config)

    def test_unbounded_cores_skipped(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=2)],
            llc_sets=1,
            llc_ways=2,
            schedule=TdmSchedule((0, 1, 1), 50),
            max_slots=5_000,
        )
        traces = conflict_storm_traces(
            cores=[0, 1], partition_sets=1, lines_per_core=6, repeats=10
        )
        report = simulate(config, traces)
        # Whatever happened, nothing is flagged: no finite bound applies.
        assert verify_bounds(report, config) == []

    def test_assert_bounds_raises_with_detail(self):
        # Fabricate a violation by checking a tight fake config: use a
        # 2-core shared SS partition, then verify against a *private*
        # config whose bound is tiny relative to shared latencies.
        shared = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1, sequencer=True)],
            llc_sets=1,
            llc_ways=1,
            sequencer=True,
        )
        traces = conflict_storm_traces(
            cores=[0, 1], partition_sets=1, lines_per_core=6, repeats=10
        )
        report = simulate(shared, traces)
        private_view = small_config(
            num_cores=2,
            partitions=private_partitions(2, sets_per_core=1, ways=4),
            llc_sets=2,
            llc_ways=4,
        )
        violations = verify_bounds(report, private_view)
        if violations:  # the storm produced > 250-cycle bus latencies
            with pytest.raises(AssertionError, match="bound violation"):
                assert_bounds(report, private_view)
        else:  # extremely unlikely, but keep the test honest
            assert report.observed_bus_wcl() <= 250
