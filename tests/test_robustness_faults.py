"""Fault injection: every fault class must trip the invariant monitor.

The acceptance bar for checked mode — no fault passes silently.  Each
:class:`FaultKind` is injected into a checked simulation and the run
must abort with an :class:`InvariantViolation` whose ``invariant`` is
the one documented to catch that fault class.
"""

import dataclasses

import pytest

from repro.common.errors import (
    ConfigurationError,
    InvariantViolation,
    SimulationError,
)
from repro.robustness.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    install_fault_plan,
)
from repro.sim.simulator import Simulator
from sim_helpers import private_partitions, small_config, write_trace_of

TRACES = {
    0: write_trace_of([0, 1, 2, 3, 0, 1, 2, 3]),
    1: write_trace_of([8, 9, 10, 11, 8, 9, 10, 11]),
}


def checked_sim(config=None, traces=None):
    config = config or small_config(num_cores=2)
    return Simulator(
        dataclasses.replace(config, checked=True), traces or TRACES
    )


def run_faulted(kind, slot, config=None, traces=None, **kw):
    """Inject one fault into a checked run; return the violation raised."""
    sim = checked_sim(config, traces)
    injector = install_fault_plan(sim.engine, FaultPlan.single(kind, slot, **kw))
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run()
    assert not injector.unfired(), "fault never delivered"
    assert injector.injected[0].spec.kind is kind
    return excinfo.value


class TestEveryFaultIsCaught:
    def test_dropped_slot_trips_slot_sequence(self):
        violation = run_faulted(FaultKind.DROPPED_SLOT, 3)
        assert violation.invariant == "slot-sequence"
        assert violation.slot == 4
        assert "dropped" in str(violation)

    def test_duplicated_slot_trips_slot_accounting(self):
        violation = run_faulted(FaultKind.DUPLICATED_SLOT, 3)
        assert violation.invariant == "slot-accounting"
        assert violation.slot == 3
        assert violation.core is not None

    def test_spurious_eviction_trips_inclusivity(self):
        violation = run_faulted(FaultKind.SPURIOUS_EVICTION, 6)
        assert violation.invariant == "inclusivity"
        assert violation.core is not None
        assert violation.set_index is not None

    def test_corrupted_line_state_trips_llc_consistency(self):
        violation = run_faulted(FaultKind.CORRUPTED_LINE_STATE, 6)
        assert violation.invariant == "llc-consistency"
        assert violation.slot == 6

    def test_trace_mutation_trips_partition_routing(self):
        config = small_config(num_cores=2, partitions=private_partitions(2))
        traces = {
            0: write_trace_of([0, 1, 2, 3, 0, 1, 2, 3]),
            1: write_trace_of([40, 41, 40, 41, 40, 41]),
        }
        # Slot 5 belongs to core 1, so the monitor inspects core 0's
        # mutated request before core 0's own slot would serve it.
        violation = run_faulted(
            FaultKind.TRACE_MUTATION, 5, config=config, traces=traces,
            core=0, block=40,
        )
        assert violation.invariant == "partition-routing"
        assert violation.core == 0

    def test_no_fault_no_violation(self):
        sim = checked_sim()
        report = sim.run()
        assert not report.timed_out
        assert sim.monitor.first_violation is None


class TestFaultPlumbing:
    def test_spec_rejects_negative_slot(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.DROPPED_SLOT, slot=-1)

    def test_trace_mutation_requires_core_and_block(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=FaultKind.TRACE_MUTATION, slot=3, core=0)

    def test_describe_names_kind_slot_and_target(self):
        spec = FaultSpec(
            kind=FaultKind.TRACE_MUTATION, slot=7, core=1, block=0x40
        )
        text = spec.describe()
        assert "trace-mutation@slot7" in text
        assert "core=1" in text
        assert "block=0x40" in text

    def test_unfired_fault_is_reported(self):
        sim = checked_sim()
        injector = install_fault_plan(
            sim.engine, FaultPlan.single(FaultKind.DROPPED_SLOT, 10_000)
        )
        sim.run()
        assert [spec.slot for spec in injector.unfired()] == [10_000]
        assert injector.injected == []

    def test_eviction_fault_on_empty_llc_is_an_error(self):
        sim = checked_sim()
        install_fault_plan(
            sim.engine, FaultPlan.single(FaultKind.SPURIOUS_EVICTION, 0)
        )
        with pytest.raises(SimulationError, match="no suitable VALID entry"):
            sim.run()

    def test_multi_fault_plan_delivers_in_slot_order(self):
        sim = checked_sim()
        plan = FaultPlan(
            faults=(
                FaultSpec(kind=FaultKind.DROPPED_SLOT, slot=6),
                FaultSpec(kind=FaultKind.DROPPED_SLOT, slot=3),
            )
        )
        injector = FaultInjector(plan).install(sim.engine)
        with pytest.raises(InvariantViolation):
            sim.run()
        # The slot-3 fault fires first (and aborts the run before 6).
        assert injector.injected[0].spec.slot == 3
