"""Unit tests for the fork-backed task pool (repro.sim.parallel)."""

import os
import signal
import time

import pytest

from repro.common.errors import ConfigurationError, TaskTimeoutError
from repro.sim.parallel import (
    TaskPool,
    effective_jobs,
    parallel_available,
    run_parallel,
)

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="fork start method unavailable"
)


# ----------------------------------------------------------------------
# effective_jobs / construction
# ----------------------------------------------------------------------
def test_effective_jobs_normalisation():
    assert effective_jobs(None) == (os.cpu_count() or 1)
    assert effective_jobs(0) == (os.cpu_count() or 1)
    assert effective_jobs(1) == 1
    assert effective_jobs(7) == 7
    with pytest.raises(ConfigurationError):
        effective_jobs(-1)


def test_pool_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        TaskPool(jobs=0)
    with pytest.raises(ConfigurationError):
        TaskPool(jobs=2, timeout=0)
    with pytest.raises(ConfigurationError):
        TaskPool(jobs=2, retry_attempts=0)


def test_pool_rejects_duplicate_task_names():
    pool = TaskPool(jobs=2)
    with pytest.raises(ConfigurationError):
        pool.run([("same", lambda: 1), ("same", lambda: 2)])


# ----------------------------------------------------------------------
# Deterministic merge
# ----------------------------------------------------------------------
def test_results_come_back_in_submission_order():
    # Earlier tasks sleep *longer*, so completion order is the reverse
    # of submission order — the returned list must not care.
    delays = [0.15, 0.10, 0.05, 0.0]
    tasks = [
        (f"task-{i}", lambda i=i, d=d: (time.sleep(d), i * i)[1])
        for i, d in enumerate(delays)
    ]
    results = TaskPool(jobs=4).run(tasks)
    assert [r.name for r in results] == [f"task-{i}" for i in range(4)]
    assert [r.value for r in results] == [0, 1, 4, 9]
    assert all(r.ok and r.status == "done" for r in results)


def test_on_result_fires_in_completion_order_once_per_task():
    seen = []
    tasks = [
        ("slow", lambda: (time.sleep(0.2), "slow")[1]),
        ("fast", lambda: "fast"),
    ]
    results = TaskPool(jobs=2).run(tasks, on_result=seen.append)
    assert sorted(r.name for r in seen) == ["fast", "slow"]
    assert seen[0].name == "fast"  # completion order, not submission
    assert [r.name for r in results] == ["slow", "fast"]  # submission order


def test_run_parallel_returns_values_in_task_order():
    tasks = [(f"t{i}", lambda i=i: i + 10) for i in range(5)]
    assert run_parallel(tasks, jobs=3) == [10, 11, 12, 13, 14]


def test_bounded_concurrency_still_completes_all_tasks():
    tasks = [(f"t{i}", lambda i=i: i) for i in range(9)]
    results = TaskPool(jobs=2).run(tasks)
    assert [r.value for r in results] == list(range(9))


# ----------------------------------------------------------------------
# Exception propagation
# ----------------------------------------------------------------------
def test_worker_exception_is_rehydrated_in_parent():
    def boom():
        raise ZeroDivisionError("synthetic failure for the pool test")

    results = TaskPool(jobs=2).run([("ok", lambda: 1), ("boom", boom)])
    assert results[0].ok
    assert results[1].status == "error"
    assert isinstance(results[1].error, ZeroDivisionError)
    assert "synthetic failure" in str(results[1].error)


def test_run_parallel_raises_first_failure_in_canonical_order():
    # Task 0 fails *slowly*, task 1 fails immediately: the parent must
    # still raise task 0's error (canonical order), matching what the
    # serial loop would have raised first.
    def slow_fail():
        time.sleep(0.15)
        raise ValueError("canonical-first")

    def fast_fail():
        raise KeyError("completed-first")

    with pytest.raises(ValueError, match="canonical-first"):
        run_parallel([("a", slow_fail), ("b", fast_fail)], jobs=2)


def test_unpicklable_result_reports_instead_of_hanging():
    def returns_closure():
        local = 3
        return lambda: local  # closures do not pickle

    results = TaskPool(jobs=1).run([("bad", returns_closure)])
    assert results[0].status == "error"
    assert "could not cross the process boundary" in str(results[0].error)


def test_worker_killed_by_os_reports_exit_code():
    def suicide():
        os.kill(os.getpid(), signal.SIGKILL)

    results = TaskPool(jobs=1).run([("killed", suicide)])
    assert results[0].status == "error"
    assert "exited without a result" in str(results[0].error)


# ----------------------------------------------------------------------
# Parent-enforced timeout
# ----------------------------------------------------------------------
def test_parent_kills_hung_worker_and_sibling_completes():
    def hang():
        while True:  # a busy loop SIGALRM could never interrupt remotely
            pass

    started = time.monotonic()
    results = TaskPool(jobs=2, timeout=0.3).run(
        [("hang", hang), ("fine", lambda: 42)]
    )
    elapsed = time.monotonic() - started
    assert elapsed < 5.0, "the hung worker must be reclaimed promptly"
    hung, fine = results
    assert hung.status == "timeout"
    assert isinstance(hung.error, TaskTimeoutError)
    assert "was killed" in str(hung.error)
    assert fine.ok and fine.value == 42


def test_timeouts_are_never_retried():
    def hang():
        while True:
            pass

    results = TaskPool(
        jobs=1,
        timeout=0.2,
        retry_attempts=3,
        is_transient=lambda exc: True,
    ).run([("hang", hang)])
    assert results[0].status == "timeout"
    assert results[0].attempts == 1


# ----------------------------------------------------------------------
# Transient retry
# ----------------------------------------------------------------------
def test_transient_failure_is_retried_until_success(tmp_path):
    flag = tmp_path / "attempted-once"

    def flaky():
        # First attempt leaves a marker and fails; the retry (a fresh
        # fork) sees the marker on the shared filesystem and succeeds.
        if not flag.exists():
            flag.write_text("1")
            raise OSError("transient host hiccup")
        return "recovered"

    results = TaskPool(
        jobs=1,
        retry_attempts=3,
        is_transient=lambda exc: isinstance(exc, OSError),
    ).run([("flaky", flaky)])
    assert results[0].ok
    assert results[0].value == "recovered"
    assert results[0].attempts == 2


def test_non_transient_failure_is_not_retried(tmp_path):
    counter = tmp_path / "attempts"

    def fails():
        attempts = int(counter.read_text()) if counter.exists() else 0
        counter.write_text(str(attempts + 1))
        raise ValueError("deterministic model error")

    results = TaskPool(
        jobs=1,
        retry_attempts=3,
        is_transient=lambda exc: isinstance(exc, OSError),
    ).run([("fails", fails)])
    assert results[0].status == "error"
    assert results[0].attempts == 1
    assert counter.read_text() == "1"


def test_retry_attempts_bound_is_respected(tmp_path):
    counter = tmp_path / "attempts"

    def always_transient():
        attempts = int(counter.read_text()) if counter.exists() else 0
        counter.write_text(str(attempts + 1))
        raise OSError("never recovers")

    results = TaskPool(
        jobs=1,
        retry_attempts=2,
        is_transient=lambda exc: isinstance(exc, OSError),
    ).run([("t", always_transient)])
    assert results[0].status == "error"
    assert results[0].attempts == 2
    assert counter.read_text() == "2"
