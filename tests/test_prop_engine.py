"""Property-based tests of whole-system behaviour on random workloads.

These are the heavyweight guarantees of the reproduction:

* simulations of 1S-TDM systems always terminate (Observation 2);
* the inclusive hierarchy is coherent when they do;
* observed request latencies never exceed the analytical bounds
  (Theorems 4.7 and 4.8);
* replaying the same traces is deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.wcl import (
    SharedPartitionParams,
    wcl_nss_cycles,
    wcl_ss_cycles,
)
from repro.common.types import AccessType
from repro.sim.simulator import Simulator, simulate
from repro.workloads.trace import MemoryTrace, TraceRecord

from sim_helpers import shared_partition, small_config

LINE = 64


def traces_strategy(num_cores: int, max_block: int = 12, max_len: int = 25):
    """Disjoint per-core block streams (core i uses blocks i*100+...)."""
    record = st.tuples(
        st.integers(min_value=0, max_value=max_block),
        st.booleans(),
    )
    per_core = st.lists(record, min_size=0, max_size=max_len)
    return st.lists(per_core, min_size=num_cores, max_size=num_cores).map(
        lambda cores: {
            core: MemoryTrace(
                [
                    TraceRecord(
                        (offset * 4 + core) * LINE,
                        AccessType.WRITE if is_write else AccessType.READ,
                    )
                    for offset, is_write in records
                ],
                name=f"prop-core{core}",
            )
            for core, records in enumerate(cores)
        }
    )


def prop_config(num_cores: int, sequencer: bool, ways: int = 4):
    return small_config(
        num_cores=num_cores,
        partitions=[shared_partition(num_cores, ways=ways, sequencer=sequencer)],
        llc_sets=1,
        llc_ways=ways,
        sequencer=sequencer,
        record_events=False,
        max_slots=200_000,
    )


def bound_params(num_cores: int, ways: int = 4):
    return SharedPartitionParams(
        total_cores=num_cores,
        sharers=num_cores,
        ways=ways,
        partition_lines=ways,
        core_capacity_lines=64,
        slot_width=50,
    )


@given(traces=traces_strategy(2))
@settings(max_examples=30, deadline=None)
def test_two_core_nss_terminates_within_theorem_47(traces):
    report = simulate(prop_config(2, sequencer=False), traces)
    assert not report.timed_out
    assert report.starved_cores() == []
    if report.requests:
        assert report.observed_bus_wcl() <= wcl_nss_cycles(bound_params(2))


@given(traces=traces_strategy(3))
@settings(max_examples=30, deadline=None)
def test_three_core_ss_within_theorem_48(traces):
    report = simulate(prop_config(3, sequencer=True), traces)
    assert not report.timed_out
    if report.requests:
        assert report.observed_bus_wcl() <= wcl_ss_cycles(bound_params(3))


@given(traces=traces_strategy(2))
@settings(max_examples=30, deadline=None)
def test_inclusivity_after_random_workload(traces):
    sim = Simulator(prop_config(2, sequencer=True), traces)
    sim.run()
    sim.system.check_inclusivity()  # raises on violation


@given(traces=traces_strategy(2))
@settings(max_examples=20, deadline=None)
def test_simulation_is_deterministic(traces):
    config = prop_config(2, sequencer=False)
    first = simulate(config, traces)
    second = simulate(config, traces)
    assert first.total_slots == second.total_slots
    assert first.makespan == second.makespan
    assert [r.completed_at for r in first.requests] == [
        r.completed_at for r in second.requests
    ]


@given(traces=traces_strategy(2))
@settings(max_examples=20, deadline=None)
def test_request_accounting_is_consistent(traces):
    report = simulate(prop_config(2, sequencer=False), traces)
    for core, trace in traces.items():
        core_report = report.core_reports[core]
        # Every trace record was either a private hit or an LLC request.
        assert core_report.private_hits + core_report.requests == len(trace)
        assert core_report.completed


@given(traces=traces_strategy(2))
@settings(max_examples=20, deadline=None)
def test_latencies_are_positive_and_bounded_by_makespan(traces):
    report = simulate(prop_config(2, sequencer=False), traces)
    for record in report.requests:
        assert record.latency > 0
        assert record.first_on_bus_at >= record.enqueued_at
        assert record.completed_at <= report.total_cycles
