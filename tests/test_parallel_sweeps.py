"""Parallel-vs-serial bit-identity across the sweep and campaign layers.

Every test here runs the same work twice — ``jobs=1`` and ``jobs>1`` —
and asserts the merged results are identical: the deterministic-merge
guarantee of :mod:`repro.sim.parallel` as seen by its real callers.
"""

import time

import pytest

from sim_helpers import small_config

from repro.common.errors import SimulationError
from repro.experiments.compare import compare_notations
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.robustness.runner import (
    CampaignRunner,
    RetryPolicy,
    RunManifest,
    sweep_seeds_robust,
)
from repro.sim.parallel import parallel_available
from repro.sim.sweeps import compare_configs, sweep_seeds
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="fork start method unavailable"
)

CONFIG = small_config(num_cores=2)
SEEDS = [1, 2, 3, 4]


def trace_factory(seed):
    workload = SyntheticWorkloadConfig(
        num_requests=20, address_range_size=512, seed=seed
    )
    return generate_disjoint_workload(workload, [0, 1])


# ----------------------------------------------------------------------
# Plain sweeps
# ----------------------------------------------------------------------
def test_sweep_seeds_parallel_is_bit_identical():
    serial = sweep_seeds(CONFIG, trace_factory, SEEDS, jobs=1)
    parallel = sweep_seeds(CONFIG, trace_factory, SEEDS, jobs=3)
    assert parallel == serial


def test_sweep_seeds_parallel_propagates_check_failures():
    def check(report):
        assert report.makespan < 0, "impossible bound"

    with pytest.raises(AssertionError, match="seed 1"):
        sweep_seeds(CONFIG, trace_factory, SEEDS, check=check, jobs=3)


def test_compare_configs_parallel_is_bit_identical():
    configs = {
        "two-core": small_config(num_cores=2),
        "fifo": small_config(num_cores=2, llc_policy="fifo"),
    }
    serial = compare_configs(configs, trace_factory, SEEDS, jobs=1)
    parallel = compare_configs(configs, trace_factory, SEEDS, jobs=3)
    assert parallel == serial
    assert list(parallel) == list(configs)


# ----------------------------------------------------------------------
# Experiment grids
# ----------------------------------------------------------------------
def test_fig7_parallel_is_bit_identical():
    kwargs = dict(address_ranges=(1024, 2048), num_requests=30)
    serial = run_fig7(jobs=1, **kwargs)
    parallel = run_fig7(jobs=3, **kwargs)
    assert parallel == serial
    assert [r.config for r in parallel.rows] == [r.config for r in serial.rows]


def test_fig8_parallel_is_bit_identical():
    kwargs = dict(address_ranges=(512, 1024), num_requests=40)
    serial = run_fig8("8a", jobs=1, **kwargs)
    parallel = run_fig8("8a", jobs=3, **kwargs)
    assert parallel == serial


def test_compare_notations_parallel_is_bit_identical():
    notations = ["SS(1,16,4)", "P(1,16)"]
    serial = compare_notations(notations, num_requests=30, jobs=1)
    parallel = compare_notations(notations, num_requests=30, jobs=2)
    assert parallel.rows == serial.rows


# ----------------------------------------------------------------------
# Robust campaign
# ----------------------------------------------------------------------
def test_robust_sweep_parallel_matches_serial_including_manifest(tmp_path):
    serial_runner = CampaignRunner(manifest_path=tmp_path / "serial.json")
    parallel_runner = CampaignRunner(
        manifest_path=tmp_path / "parallel.json", jobs=3
    )
    serial = sweep_seeds_robust(
        CONFIG, trace_factory, SEEDS, runner=serial_runner
    )
    parallel = sweep_seeds_robust(
        CONFIG, trace_factory, SEEDS, runner=parallel_runner
    )
    assert parallel.result == serial.result
    assert parallel.completed_seeds == serial.completed_seeds
    assert [o.status for o in parallel.campaign.outcomes] == [
        o.status for o in serial.campaign.outcomes
    ]
    # The comparable manifest content (status + payload; not timings).
    assert (
        RunManifest.load(tmp_path / "parallel.json").results()
        == RunManifest.load(tmp_path / "serial.json").results()
    )


def test_parallel_campaign_quarantines_worker_exception(tmp_path):
    def selective_factory(seed):
        if seed == 2:
            raise SimulationError("seed 2 workload is broken")
        return trace_factory(seed)

    robust = sweep_seeds_robust(
        CONFIG, selective_factory, [1, 2, 3], jobs=3
    )
    assert robust.quarantined_seeds == (2,)
    assert robust.completed_seeds == (1, 3)
    bad = robust.campaign.outcomes[1]
    assert bad.status == "quarantined"
    assert bad.error_type == "SimulationError"
    assert "seed 2 workload is broken" in bad.error


def test_parallel_campaign_kills_hung_task(tmp_path):
    def hang():
        while True:
            pass

    runner = CampaignRunner(
        manifest_path=tmp_path / "m.json", timeout=0.3, jobs=2
    )
    started = time.monotonic()
    result = runner.run([("hang", hang), ("fine", lambda: "ok")])
    assert time.monotonic() - started < 5.0
    hung, fine = result.outcomes
    assert hung.status == "quarantined"
    assert hung.error_type == "TaskTimeoutError"
    assert fine.status == "done"
    entry = RunManifest.load(tmp_path / "m.json").entry("hang")
    assert entry["status"] == "quarantined"
    assert entry["error_type"] == "TaskTimeoutError"


def test_parallel_campaign_retries_transient_failures(tmp_path):
    flag = tmp_path / "first-attempt"

    def flaky():
        if not flag.exists():
            flag.write_text("1")
            raise OSError("transient host hiccup")
        return "recovered"

    runner = CampaignRunner(
        manifest_path=tmp_path / "m.json",
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        jobs=2,
    )
    result = runner.run([("flaky", flaky)])
    assert result.outcomes[0].status == "done"
    assert result.outcomes[0].attempts == 2
    assert result.outcomes[0].result == "recovered"


def test_parallel_campaign_resume_skips_done_tasks(tmp_path):
    path = tmp_path / "m.json"
    runner = CampaignRunner(manifest_path=path, jobs=2)
    first = runner.run([("a", lambda: 1), ("b", lambda: 2)])
    assert [o.status for o in first.outcomes] == ["done", "done"]

    def must_not_run():
        raise AssertionError("resumed task was re-executed")

    resumed = CampaignRunner(manifest_path=path, jobs=2).run(
        [("a", must_not_run), ("b", must_not_run), ("c", lambda: 3)]
    )
    assert [o.status for o in resumed.outcomes] == ["skipped", "skipped", "done"]
    assert resumed.outcomes[2].result == 3


def test_parallel_campaign_outcome_order_is_canonical(tmp_path):
    # Task 0 finishes last; outcomes must still list it first.
    tasks = [
        ("slow", lambda: (time.sleep(0.2), "s")[1]),
        ("fast", lambda: "f"),
    ]
    result = CampaignRunner(jobs=2).run(tasks)
    assert [o.name for o in result.outcomes] == ["slow", "fast"]
    assert [o.result for o in result.outcomes] == ["s", "f"]
