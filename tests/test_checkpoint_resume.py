"""Resume byte-identity: interrupted + resumed == uninterrupted.

The hard guarantee of the checkpoint layer is not "roughly the same
results" but *byte identity* — the final report, every metrics export
and the on-disk event trace of a run that was checkpointed, killed and
resumed must be indistinguishable from a run that was never touched.
These tests exercise that end-to-end under both engines, with traced
runs (sink reopen) and across fuzz-generated configurations.
"""

import dataclasses
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessType
from repro.obs.collect import collect_metrics
from repro.obs.exporters import (
    metrics_to_csv,
    metrics_to_jsonl,
    metrics_to_prometheus,
)
from repro.obs.tracing import JsonlTraceSink, trace_digest
from repro.robustness.checkpoint import (
    checkpoint_sink_states,
    run_resumable,
    snapshot_simulator,
)
from repro.sim.simulator import Simulator, simulate
from repro.workloads.trace import MemoryTrace, TraceRecord
from sim_helpers import LINE, shared_partition, small_config, write_trace_of


def _canonical(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _workload(seed=11, length=300, blocks=32, cores=2):
    rng = random.Random(seed)
    return {
        core: write_trace_of([rng.randrange(blocks) for _ in range(length)])
        for core in range(cores)
    }


def _report_identity(report):
    """Every comparable field of a report (timing-free by construction)."""
    return (
        report.total_slots,
        report.total_cycles,
        report.timed_out,
        report.latencies(),
        _canonical(report.slot_usage),
        repr(report.llc_stats),
        report.llc_back_invalidations,
        report.dram_reads,
        report.dram_writes,
    )


# ----------------------------------------------------------------------
# Report + metrics byte-identity after an interrupt/resume cycle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["fast", "reference"])
@pytest.mark.parametrize("checked", [False, True])
def test_resume_is_byte_identical(tmp_path, engine, checked):
    config = dataclasses.replace(
        small_config(), engine=engine, checked=checked
    )
    traces = _workload()
    path = tmp_path / "mid.ckpt"

    reference = Simulator(config, traces).run()

    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=23)
    sim.checkpoint(path)
    del sim  # the "killed" process

    resumed = Simulator.restore(path, config, traces).run()

    assert _report_identity(resumed) == _report_identity(reference)
    assert trace_digest(resumed.events) == trace_digest(reference.events)

    ref_metrics = collect_metrics(reference, config.slot_width)
    res_metrics = collect_metrics(resumed, config.slot_width)
    for render in (metrics_to_jsonl, metrics_to_csv, metrics_to_prometheus):
        assert render(res_metrics) == render(ref_metrics)


def test_double_interrupt_resume_is_byte_identical(tmp_path):
    # Two kills in one run: resume, checkpoint again further in, kill
    # again, resume again.  Still byte-identical.
    config = small_config()
    traces = _workload(seed=5)
    path = tmp_path / "twice.ckpt"
    reference = Simulator(config, traces).run()

    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=11)
    sim.checkpoint(path)

    sim = Simulator.restore(path, config, traces)
    sim.engine.run(stop_at_slot=37)
    sim.checkpoint(path)

    resumed = Simulator.restore(path, config, traces).run()
    assert _report_identity(resumed) == _report_identity(reference)
    assert trace_digest(resumed.events) == trace_digest(reference.events)


def test_run_resumable_resumes_from_existing_checkpoint(tmp_path):
    config = small_config()
    traces = _workload(seed=3)
    path = tmp_path / "resume.ckpt"
    reference = Simulator(config, traces).run()

    # Crash emulation: drive partway, checkpoint, abandon the process.
    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=29)
    sim.checkpoint(path)

    resumed = run_resumable(config, traces, path=path, every_slots=16)
    assert _report_identity(resumed) == _report_identity(reference)
    assert not path.exists()


def test_run_resumable_wall_clock_interval_uses_injected_clock(tmp_path):
    config = small_config()
    traces = _workload(seed=4)
    path = tmp_path / "clocked.ckpt"
    saves = []

    ticks = iter(range(1000))

    def clock():
        return float(next(ticks))

    import repro.robustness.checkpoint as ckpt

    real_save = ckpt.save_checkpoint

    def counting_save(sim, target, registry=None, **kwargs):
        saves.append(sim.engine._slot)
        return real_save(sim, target, registry=registry, **kwargs)

    ckpt.save_checkpoint = counting_save
    try:
        report = run_resumable(
            config,
            traces,
            path=path,
            every_slots=32,
            every_secs=0.5,
            clock=clock,
        )
    finally:
        ckpt.save_checkpoint = real_save
    # Every poll advances the fake clock by 1.0 > every_secs, so each
    # incomplete poll boundary saved once.
    assert saves, "expected at least one wall-clock-gated save"
    assert report.latencies() == Simulator(config, traces).run().latencies()
    assert not path.exists()


# ----------------------------------------------------------------------
# Traced runs: the on-disk JSONL trace is byte-identical too
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_trace_file_bytes_survive_kill_and_resume(tmp_path, engine):
    config = dataclasses.replace(small_config(), engine=engine)
    traces = _workload(seed=13)

    ref_trace = tmp_path / "reference.jsonl"
    with JsonlTraceSink(ref_trace) as sink:
        Simulator(config, traces, event_sink=sink).run()

    path = tmp_path / "traced.ckpt"
    resumed_trace = tmp_path / "resumed.jsonl"
    sink = JsonlTraceSink(resumed_trace)
    sim = Simulator(config, traces, event_sink=sink)
    sim.engine.run(stop_at_slot=23)
    sim.checkpoint(path)
    # Crash emulation: events emitted after the checkpoint are torn
    # (the dying process flushed some of them, lost others).
    sim.engine.run(stop_at_slot=31)
    sink._handle.flush()
    sink._handle.close()

    states = checkpoint_sink_states(path)
    assert len(states) == 1
    reopened = JsonlTraceSink.reopen(resumed_trace, states[0])
    resumed = Simulator.restore(path, config, traces, event_sink=reopened)
    report = resumed.run()
    reopened.close()

    assert ref_trace.read_bytes() == resumed_trace.read_bytes()
    assert report.latencies() == simulate(config, traces).latencies()


def test_restore_without_reopened_sink_is_refused(tmp_path):
    from repro.common.errors import CheckpointError

    config = small_config()
    traces = _workload(seed=13)
    trace_path = tmp_path / "trace.jsonl"
    path = tmp_path / "sinked.ckpt"
    with JsonlTraceSink(trace_path) as sink:
        sim = Simulator(config, traces, event_sink=sink)
        sim.engine.run(stop_at_slot=9)
        sim.checkpoint(path)

    with pytest.raises(CheckpointError, match="reopen the trace"):
        Simulator.restore(path, config, traces)


# ----------------------------------------------------------------------
# Campaign-level byte identity: summaries and merged metrics
# ----------------------------------------------------------------------
def test_registry_from_rows_is_the_inverse_of_rows():
    from repro.obs.metrics import MetricsRegistry, registry_from_rows

    registry = MetricsRegistry()
    registry.counter("ops", artifact="figure-7").inc(3)
    registry.gauge("depth").set(2.5)
    hist = registry.histogram("latency", bucket_width=4, core=1)
    hist.observe(3)
    hist.observe(9)
    empty = registry.histogram("untouched", bucket_width=2)
    assert empty.count == 0
    assert registry_from_rows(registry.rows()).rows() == registry.rows()


def test_campaign_summary_and_metrics_bytes_survive_kill_and_resume(tmp_path):
    # The merged metrics export and the summary files of a campaign that
    # was killed and resumed must be byte-identical to an uninterrupted
    # run's — regardless of which artifacts completed before the kill.
    from repro.robustness.runner import campaign_metrics, run_all_robust

    ref = tmp_path / "ref"
    killed = tmp_path / "killed"
    kwargs = dict(num_requests=60, tightness_repeats=3, with_metrics=True)

    reference = run_all_robust(out_dir=ref, **kwargs)
    ref_export = metrics_to_jsonl(campaign_metrics(reference))
    assert ref_export, "expected the figure artifacts to carry metrics"

    run_all_robust(out_dir=killed, **kwargs)
    # Emulate a kill after two artifacts: strip the later manifest
    # entries and the summary files only a finished run writes.  The
    # surviving names sort *differently* than they ran, which is
    # exactly what used to leak into the resumed summary's key order.
    manifest = json.loads((killed / "manifest.json").read_text())
    survived = {"section-5.1-constants", "figure-7"}
    manifest["tasks"] = {
        name: entry
        for name, entry in manifest["tasks"].items()
        if name in survived
    }
    (killed / "manifest.json").write_text(json.dumps(manifest))
    (killed / "summary.json").unlink()
    (killed / "SUMMARY.txt").unlink()

    resumed = run_all_robust(out_dir=killed, **kwargs)
    skipped = {o.name for o in resumed.outcomes if o.status == "skipped"}
    assert skipped == survived

    assert (killed / "summary.json").read_bytes() == (
        ref / "summary.json"
    ).read_bytes()
    assert (killed / "SUMMARY.txt").read_bytes() == (
        ref / "SUMMARY.txt"
    ).read_bytes()
    # figure-7 never ran in the resumed campaign; its metrics come from
    # the rows its original run persisted in the manifest.
    assert metrics_to_jsonl(campaign_metrics(resumed)) == ref_export


# ----------------------------------------------------------------------
# Hypothesis: round-trip identity across fuzz-generated configurations
# ----------------------------------------------------------------------
def _traces_strategy(num_cores):
    record = st.tuples(
        st.integers(min_value=0, max_value=15),
        st.booleans(),
    )
    per_core = st.lists(record, min_size=8, max_size=60)
    return st.lists(per_core, min_size=num_cores, max_size=num_cores).map(
        lambda cores: {
            core: MemoryTrace(
                [
                    TraceRecord(
                        block * LINE,
                        AccessType.WRITE if is_write else AccessType.READ,
                    )
                    for block, is_write in records
                ],
                name=f"ckpt-core{core}",
            )
            for core, records in enumerate(cores)
        }
    )


@st.composite
def _scenario(draw):
    num_cores = draw(st.integers(min_value=1, max_value=3))
    sequencer = draw(st.booleans())
    config = small_config(
        num_cores=num_cores,
        partitions=[
            shared_partition(num_cores, ways=4, sequencer=sequencer)
        ],
        llc_sets=2,
        llc_ways=4,
        sequencer=sequencer,
        llc_policy=draw(
            st.sampled_from(["lru", "fifo", "plru", "random", "nmru"])
        ),
    )
    config = dataclasses.replace(
        config, engine=draw(st.sampled_from(["fast", "reference"]))
    )
    traces = draw(_traces_strategy(num_cores))
    stop_slot = draw(st.integers(min_value=1, max_value=40))
    return config, traces, stop_slot


@settings(max_examples=25, deadline=None)
@given(scenario=_scenario())
def test_prop_checkpoint_round_trip(tmp_path_factory, scenario):
    config, traces, stop_slot = scenario
    path = tmp_path_factory.mktemp("prop") / "prop.ckpt"

    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=stop_slot)
    sim.checkpoint(path)

    restored = Simulator.restore(path, config, traces)
    # State-identical at the stop point...
    assert _canonical(snapshot_simulator(restored)) == _canonical(
        snapshot_simulator(sim)
    )
    # ...and byte-identical going forward.
    resumed = restored.engine.run()
    reference = Simulator(config, traces).run()
    assert _report_identity(resumed) == _report_identity(reference)
    assert trace_digest(resumed.events) == trace_digest(reference.events)
