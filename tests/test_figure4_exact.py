"""Figure 4, reproduced slot by slot (Observation 3).

The paper's Figure 4: lines l1, l2 sit in set(X), both privately cached
by c4.  c_ua requests X (evicting l1), c2 requests Y in the same set
(evicting l2), and c3 requests A in *another* set whose victim is a
dirty line of c_ua — forcing c_ua to spend its next slot on a
write-back.  c4 frees l1's entry, but because c_ua's slot went to the
write-back, **c2 occupies the free entry**: the owner of that entry
jumps from c4 (distance 1) to c2 (distance 3).  Distance increased —
Observation 3, the reason Theorem 4.7 is so large.

Core mapping: paper c1/c_ua -> core 0, c2 -> core 1, c3 -> core 2,
c4 -> core 3.  Schedule {0,1,2,3}, SW = 50.
"""

import pytest

from repro.analysis.distance import tracker_from_events
from repro.common.types import AccessType
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.sim.events import EventKind
from repro.sim.simulator import Simulator
from repro.workloads.trace import MemoryTrace, TraceRecord

SW = 50

# Even blocks fold to set 0 (the paper's set(X)); odd blocks to set 1.
L1, L2, X, Y = 100, 102, 104, 200    # set 0
L, LPRIME, A = 101, 103, 201         # set 1


@pytest.fixture(scope="module")
def run():
    partition = PartitionSpec(
        "shared", [0, 1], (0, 2), (0, 1, 2, 3), sequencer=False
    )
    config = SystemConfig(
        num_cores=4,
        partitions=[partition],
        llc_sets=2,
        llc_ways=2,
        slot_width=SW,
        llc_policy="lru",
        record_events=True,
        max_slots=10_000,
    )
    traces = {
        # c_ua: fills l, l' in set 1 during warmup, then requests X.
        0: MemoryTrace(
            [TraceRecord(L * 64, AccessType.WRITE),
             TraceRecord(LPRIME * 64, AccessType.WRITE),
             TraceRecord(X * 64, AccessType.WRITE)]
        ),
        # paper c2: one request to Y in set(X).
        1: MemoryTrace([TraceRecord(Y * 64, AccessType.WRITE)]),
        # paper c3: one request to A in set 1 (evicts c_ua's line l).
        2: MemoryTrace([TraceRecord(A * 64, AccessType.WRITE)]),
        # paper c4: fills l1, l2 during warmup.
        3: MemoryTrace(
            [TraceRecord(L1 * 64, AccessType.WRITE),
             TraceRecord(L2 * 64, AccessType.WRITE)]
        ),
    }
    sim = Simulator(config, traces, start_cycles={1: 300, 2: 320})
    report = sim.run()
    return sim, report


def events_at_slot(report, slot, kind):
    return [e for e in report.events.of_kind(kind) if e.slot == slot]


class TestFigure4SlotBySlot:
    def test_step1_cua_request_evicts_l1_of_c4(self, run):
        _sim, report = run
        evictions = events_at_slot(report, 8, EventKind.EVICT_START)
        assert len(evictions) == 1
        assert evictions[0].core == 0
        assert evictions[0].block == L1
        assert "owners=[3]" in evictions[0].detail

    def test_step2_c2_request_evicts_l2_of_c4(self, run):
        _sim, report = run
        evictions = events_at_slot(report, 9, EventKind.EVICT_START)
        assert len(evictions) == 1
        assert evictions[0].core == 1
        assert evictions[0].block == L2
        assert "owners=[3]" in evictions[0].detail

    def test_step3_c3_request_forces_cua_eviction(self, run):
        _sim, report = run
        evictions = events_at_slot(report, 10, EventKind.EVICT_START)
        assert len(evictions) == 1
        assert evictions[0].core == 2
        assert evictions[0].block == L
        assert "owners=[0]" in evictions[0].detail

    def test_step4_c4_frees_l1_entry(self, run):
        _sim, report = run
        writebacks = events_at_slot(report, 11, EventKind.WB_SENT)
        assert writebacks[0].core == 3
        assert writebacks[0].block == L1
        assert events_at_slot(report, 11, EventKind.ENTRY_FREED)

    def test_step5_cua_slot_consumed_by_its_own_writeback(self, run):
        _sim, report = run
        writebacks = events_at_slot(report, 12, EventKind.WB_SENT)
        assert len(writebacks) == 1
        assert writebacks[0].core == 0
        assert writebacks[0].block == L
        assert "back-invalidation" in writebacks[0].detail
        # And crucially: no request broadcast by core 0 in that slot.
        assert not events_at_slot(report, 12, EventKind.REQ_BROADCAST)

    def test_step5b_c2_steals_the_freed_entry(self, run):
        _sim, report = run
        allocations = events_at_slot(report, 13, EventKind.LLC_ALLOC)
        assert len(allocations) == 1
        assert allocations[0].core == 1
        assert allocations[0].block == Y

    def test_distance_increased_from_1_to_3(self, run):
        """The paper's punchline: d goes d_{c1}^{c4}=1 -> d_{c1}^{c2}=3."""
        sim, report = run
        tracker = tracker_from_events(
            report.events, sim.system.schedule, observer=0
        )
        l1_key = next(
            key
            for key, changes in tracker.history.items()
            if any(change.owner == 3 for change in changes)
            and any(change.owner == 1 for change in changes)
        )
        trajectory = [
            d for d in tracker.trajectory(l1_key) if d is not None
        ]
        # Owner 3 gives distance 1; owner 1 gives distance 3.
        assert 1 in trajectory and 3 in trajectory
        assert trajectory.index(1) < trajectory.index(3)
        assert tracker.increases(l1_key, across_gaps=True) >= 1
        assert not tracker.is_non_increasing(l1_key, across_gaps=True)

    def test_cua_still_completes(self, run):
        _sim, report = run
        assert not report.timed_out
        record = next(
            r for r in report.requests if r.core == 0 and r.block == X
        )
        assert record.completed_at is not None
