"""The differential oracle: clean runs pass, injected faults are caught."""

import pytest

from repro.common.errors import FuzzError
from repro.common.types import AccessType
from repro.robustness.fuzz import FuzzCase, run_fuzz_case
from repro.robustness.oracle import ORACLE_CHECKS, check_run
from repro.sim.simulator import Simulator, simulate
from repro.workloads.trace import MemoryTrace, TraceRecord

from sim_helpers import shared_partition, small_config

LINE = 64


def _trace(core, blocks, write=True):
    access = AccessType.WRITE if write else AccessType.READ
    return MemoryTrace(
        [TraceRecord(block * LINE, access) for block in blocks],
        name=f"oracle-core{core}",
    )


def _case(fault=None, sequencer=False):
    """A hand-built conflict-storm case: 2 cores on a 1-set 2-way share."""
    config = {
        "num_cores": 2,
        "slot_width": 50,
        "llc_sets": 1,
        "llc_ways": 2,
        "l2_sets": 1,
        "l2_ways": 1,
        "schedule_order": None,
        "max_slots": 100_000,
        "partitions": [
            {
                "name": "shared",
                "sets": [0],
                "way_range": [0, 2],
                "cores": [0, 1],
                "sequencer": sequencer,
            }
        ],
    }
    traces = {
        0: tuple(f"W {block * LINE:#x}" for block in [1, 2, 3, 1, 2, 3, 1, 2]),
        1: tuple(f"W {block * LINE:#x}" for block in [4097, 4098, 4097, 4098]),
    }
    return FuzzCase(
        case_id="case-test", seed=0, config=config, traces=traces, fault=fault
    )


class TestCleanRuns:
    def test_clean_shared_run_passes_every_check(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=4)],
            llc_sets=1,
            llc_ways=4,
        )
        traces = {0: _trace(0, [0, 4, 8, 0, 4]), 1: _trace(1, [1, 5, 9, 1])}
        report = Simulator(config, traces).run()
        oracle = check_run(report, config)
        assert oracle.passed
        assert oracle.violations == []
        assert oracle.events_checked > 0
        assert oracle.requests_checked == len(report.requests) > 0

    def test_clean_sequenced_run_passes(self):
        config = small_config(
            num_cores=3,
            partitions=[shared_partition(3, ways=4, sequencer=True)],
            llc_sets=1,
            llc_ways=4,
            sequencer=True,
        )
        traces = {
            core: _trace(core, [core, core + 4, core + 8, core])
            for core in range(3)
        }
        report = Simulator(config, traces).run()
        assert check_run(report, config).passed

    def test_empty_workload_passes(self):
        config = small_config(num_cores=2)
        report = simulate(config, {0: _trace(0, []), 1: _trace(1, [])})
        assert check_run(report, config).passed

    def test_run_without_events_is_rejected(self):
        config = small_config(num_cores=2, record_events=False)
        report = simulate(config, {0: _trace(0, [0, 4]), 1: _trace(1, [1])})
        with pytest.raises(FuzzError, match="record_events"):
            check_run(report, config)

    def test_check_names_are_stable(self):
        # The check names are the failure-signature vocabulary; renaming
        # one silently invalidates stored repro artifacts.
        assert ORACLE_CHECKS == (
            "slot-accounting",
            "slot-ownership",
            "slot-timing",
            "llc-contents",
            "sequencer-fifo",
            "request-accounting",
            "response-latency",
            "analytical-bounds",
            "completion",
            "engine-differential",
        )


class TestFaultDetection:
    """Every injectable slot/LLC fault must produce a failing verdict."""

    def test_clean_case_passes_through_the_harness(self):
        result = run_fuzz_case(_case())
        assert result.passed
        assert result.signature is None
        assert result.completed_requests == 12

    def test_dropped_slot_breaks_slot_accounting(self):
        result = run_fuzz_case(_case(fault={"kind": "dropped-slot", "slot": 2}))
        assert result.fault_fired
        assert result.signature == "oracle:slot-accounting"
        assert any(
            v["check"] == "slot-accounting" and "dropped" in v["detail"]
            for v in result.violations
        )

    def test_duplicated_slot_breaks_slot_accounting(self):
        result = run_fuzz_case(
            _case(fault={"kind": "duplicated-slot", "slot": 1})
        )
        assert result.fault_fired
        assert not result.passed
        assert "slot-accounting" in result.signature

    def test_spurious_eviction_is_caught(self):
        result = run_fuzz_case(
            _case(fault={"kind": "spurious-eviction", "slot": 6})
        )
        assert result.fault_fired
        assert not result.passed

    def test_corrupted_line_state_is_caught(self):
        result = run_fuzz_case(
            _case(fault={"kind": "corrupted-line-state", "slot": 6})
        )
        assert result.fault_fired
        assert not result.passed

    def test_fuzz_discovered_writeback_priority_case(self):
        # Found by `repro-llc fuzz` at budget 4000 (seed 5, case-03560,
        # shrunk to 6 requests): with a 1-line L2 the interfering core
        # queues a capacity write-back ahead of the back-invalidation
        # that frees the way the victim core waits on.  Under a plain
        # FIFO PWB the victim's bus latency reached 495 cycles against
        # a Theorem 4.7 bound of 405; the back-invalidation-first PWB
        # keeps it within the bound.
        config = {
            "num_cores": 2,
            "slot_width": 45,
            "llc_sets": 2,
            "llc_ways": 1,
            "l2_sets": 1,
            "l2_ways": 1,
            "schedule_order": None,
            "max_slots": 100_000,
            "partitions": [
                {
                    "name": "shared",
                    "sets": [0, 1],
                    "way_range": [0, 1],
                    "cores": [0, 1],
                    "sequencer": False,
                }
            ],
        }
        traces = {
            0: ("W 0x100", "W 0xc0", "W 0x40"),
            1: ("W 0x40080", "W 0x40040", "W 0x400c0"),
        }
        case = FuzzCase(
            case_id="case-03560", seed=5, config=config, traces=traces, fault=None
        )
        result = run_fuzz_case(case)
        assert result.passed, result.violations

    def test_fuzz_discovered_ss_own_writeback_allowance(self):
        # Found by `repro-llc fuzz` at budget 2000 (seed 6, case-00959,
        # shrunk to 10 requests): under the sequencer, the blocked core
        # is charged mid-wait for back-invalidations of its lines in
        # *other* sets — obligations Theorem 4.8's capacity-independent
        # formula does not budget (Theorem 4.7 budgets them via m+1).
        # One request reaches 545 cycles against the raw 500-cycle SS
        # bound; with the oracle's own-write-back allowance (one period
        # per write-back the core itself sends inside the window) the
        # case is within the model's bound and must pass.
        config = {
            "num_cores": 2,
            "slot_width": 50,
            "llc_sets": 2,
            "llc_ways": 1,
            "l2_sets": 4,
            "l2_ways": 2,
            "schedule_order": None,
            "max_slots": 100_000,
            "partitions": [
                {
                    "name": "shared",
                    "sets": [0, 1],
                    "way_range": [0, 1],
                    "cores": [0, 1],
                    "sequencer": True,
                }
            ],
        }
        traces = {
            0: ("W 0x40", "R 0x80", "W 0x40", "W 0x80", "R 0x40", "W 0x80"),
            1: ("W 0x400c0", "W 0x40040", "W 0x40100", "R 0x400c0"),
        }
        case = FuzzCase(
            case_id="case-00959", seed=6, config=config, traces=traces, fault=None
        )
        result = run_fuzz_case(case)
        assert result.passed, result.violations

    def test_unfired_fault_leaves_the_case_green(self):
        # Slot far beyond the run's end: the fault never fires and the
        # (unperturbed) run must still satisfy the oracle.
        result = run_fuzz_case(
            _case(fault={"kind": "dropped-slot", "slot": 90_000})
        )
        assert not result.fault_fired
        assert result.passed
