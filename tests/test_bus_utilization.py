"""Tests for per-core bus-slot usage accounting."""

import pytest

from repro.sim.simulator import simulate
from repro.workloads.adversarial import conflict_storm_traces

from sim_helpers import shared_partition, small_config, write_trace_of


class TestSlotUsage:
    def test_counts_sum_to_core_slot_share(self):
        config = small_config(num_cores=2)
        traces = {0: write_trace_of([0, 4]), 1: write_trace_of([1, 5])}
        report = simulate(config, traces)
        for core in (0, 1):
            usage = report.slot_usage[core]
            owned_slots = sum(usage.values())
            # 2-core 1S-TDM: each core owns every other slot.
            assert owned_slots == pytest.approx(report.total_slots / 2, abs=1)

    def test_idle_system_is_mostly_idle(self):
        config = small_config(num_cores=2)
        traces = {0: write_trace_of([0])}
        report = simulate(config, traces)
        assert report.slot_usage[1]["request"] == 0
        assert report.slot_usage[1]["writeback"] == 0

    def test_storm_is_busy(self):
        config = small_config(
            num_cores=4,
            partitions=[shared_partition(4, ways=4)],
            llc_sets=1,
            llc_ways=4,
            max_slots=300_000,
        )
        traces = conflict_storm_traces(
            cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=8, repeats=10
        )
        report = simulate(config, traces)
        assert report.bus_utilization() > 0.5
        total_requests = sum(u["request"] for u in report.slot_usage.values())
        assert total_requests >= len(report.requests)

    def test_writeback_slots_counted(self):
        # Cross-core dirty eviction forces at least one write-back slot.
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=1,
            llc_ways=1,
        )
        traces = {1: write_trace_of([0]), 0: write_trace_of([2])}
        report = simulate(config, traces, start_cycles={0: 60})
        assert report.slot_usage[1]["writeback"] >= 1

    def test_per_core_utilization(self):
        config = small_config(num_cores=2)
        traces = {0: write_trace_of([0, 4, 8, 12])}
        report = simulate(config, traces)
        assert report.bus_utilization(0) > report.bus_utilization(1)

    def test_empty_run_zero_utilization(self):
        config = small_config(num_cores=2)
        report = simulate(config, {})
        assert report.bus_utilization() == 0.0
