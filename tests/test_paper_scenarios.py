"""Integration tests encoding the paper's narrative scenarios.

* Figure 2 / Section 4.1 — unbounded WCL under a multi-slot TDM
  schedule, bounded under 1S-TDM.
* Figure 3 / Observations 1–2 — under 1S-TDM the core under analysis
  always completes, and the owner distance of contended lines decays.
* Figure 4 / Observation 3 — write-backs by the core under analysis let
  distances increase again, which is why NSS observes a higher WCL than
  SS on the same workload (the Figure 7 claim).
"""

import pytest

from repro.analysis.unbounded import starvation_witness
from repro.analysis.wcl import SharedPartitionParams, wcl_nss_cycles, wcl_ss_cycles
from repro.bus.arbiter import ArbitrationPolicy
from repro.bus.schedule import TdmSchedule, one_slot_tdm
from repro.sim.events import EventKind
from repro.sim.simulator import Simulator, simulate
from repro.workloads.adversarial import conflict_storm_traces

from sim_helpers import shared_partition, small_config, write_trace_of


class TestFigure2Unbounded:
    def test_latency_grows_with_interferer_stream_under_multi_slot(self):
        result = starvation_witness(stream_lengths=(20, 40, 80), ways=2)
        assert result.multi_slot_growth, result

    def test_one_slot_tdm_latency_is_flat_and_bounded(self):
        result = starvation_witness(stream_lengths=(20, 40, 80), ways=2)
        assert len(set(result.one_slot_latencies)) == 1
        assert result.one_slot_bounded

    def test_growth_is_roughly_linear_in_stream_length(self):
        result = starvation_witness(stream_lengths=(25, 50, 100), ways=2)
        first, second, third = result.multi_slot_latencies
        # Doubling the stream should roughly double the added latency.
        assert third - second == pytest.approx(2 * (second - first), rel=0.3)


def storm_config(sequencer: bool, ways: int = 4, cores: int = 4):
    return small_config(
        num_cores=cores,
        partitions=[shared_partition(cores, ways=ways, sequencer=sequencer)],
        llc_sets=1,
        llc_ways=ways,
        sequencer=sequencer,
        max_slots=500_000,
    )


def storm_traces(cores: int, ways: int, repeats: int = 30):
    return conflict_storm_traces(
        cores=list(range(cores)),
        partition_sets=1,
        lines_per_core=ways + 2,
        repeats=repeats,
    )


class TestObservation1And2:
    """Figure 3: every request of every core eventually completes."""

    @pytest.mark.parametrize("sequencer", [False, True])
    def test_storm_completes_under_1s_tdm(self, sequencer):
        config = storm_config(sequencer)
        report = simulate(config, storm_traces(4, 4))
        assert not report.timed_out
        assert report.starved_cores() == []
        for core in range(4):
            assert report.core_reports[core].completed

    def test_each_blocked_request_eventually_gets_response(self):
        config = storm_config(sequencer=False)
        report = simulate(config, storm_traces(4, 4, repeats=10))
        # Every broadcast request that got blocked still completed.
        assert all(record.completed_at is not None for record in report.requests)

    def test_evictions_and_writebacks_flow(self):
        config = storm_config(sequencer=False)
        report = simulate(config, storm_traces(4, 4, repeats=5))
        counts = report.events.counts()
        assert counts.get(EventKind.EVICT_START, 0) > 0
        assert counts.get(EventKind.WB_SENT, 0) > 0
        assert counts.get(EventKind.ENTRY_FREED, 0) > 0


class TestObservation3NssVsSs:
    def test_nss_observed_wcl_not_lower_than_ss(self):
        """Figure 7's qualitative claim on a conflict storm."""
        traces = storm_traces(4, 4, repeats=40)
        nss = simulate(storm_config(sequencer=False), traces)
        ss = simulate(storm_config(sequencer=True), traces)
        assert nss.observed_wcl() >= ss.observed_wcl()

    def test_sequencer_orders_claims_in_broadcast_order(self):
        config = storm_config(sequencer=True)
        report = simulate(config, storm_traces(4, 4, repeats=10))
        # With the sequencer, a blocked-but-head request is never
        # overtaken: allocation events for one set must follow the
        # registration order per round.
        registers = report.events.of_kind(EventKind.SEQ_REGISTER)
        assert registers, "storm must queue requests in the sequencer"

    def test_seq_blocked_events_only_with_sequencer(self):
        traces = storm_traces(4, 4, repeats=10)
        nss = simulate(storm_config(sequencer=False), traces)
        ss = simulate(storm_config(sequencer=True), traces)
        assert not nss.events.of_kind(EventKind.SEQ_BLOCKED)
        # The storm occasionally lands a free entry while a non-head
        # core is on the bus; that is precisely what SS forbids.
        assert ss.sequencer_stats["shared"].registrations > 0


class TestBoundCompliance:
    """Observed latencies must sit under the analytical bounds."""

    def params(self, cores=4, ways=4):
        return SharedPartitionParams(
            total_cores=cores,
            sharers=cores,
            ways=ways,
            partition_lines=ways,
            core_capacity_lines=64,
            slot_width=50,
        )

    def test_ss_storm_within_theorem_48(self):
        config = storm_config(sequencer=True)
        report = simulate(config, storm_traces(4, 4, repeats=40))
        bound = wcl_ss_cycles(self.params())
        assert report.observed_bus_wcl() <= bound
        # End-to-end latency additionally waits for the first slot.
        assert report.observed_wcl() <= bound + config.period_cycles

    def test_nss_storm_within_theorem_47(self):
        config = storm_config(sequencer=False)
        report = simulate(config, storm_traces(4, 4, repeats=40))
        bound = wcl_nss_cycles(self.params())
        assert report.observed_bus_wcl() <= bound

    def test_two_core_storm_within_bounds(self):
        config = storm_config(sequencer=True, cores=2)
        report = simulate(config, storm_traces(2, 4, repeats=40))
        bound = wcl_ss_cycles(self.params(cores=2))
        assert report.observed_bus_wcl() <= bound

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random", "plru"])
    def test_bounds_hold_for_any_replacement_policy(self, policy):
        """Section 4.3: the analysis is replacement-policy agnostic."""
        config = small_config(
            num_cores=4,
            partitions=[shared_partition(4, ways=4, sequencer=True)],
            llc_sets=1,
            llc_ways=4,
            llc_policy=policy,
            max_slots=500_000,
        )
        report = simulate(config, storm_traces(4, 4, repeats=20))
        bound = wcl_ss_cycles(self.params())
        assert report.observed_bus_wcl() <= bound, policy

    @pytest.mark.parametrize(
        "policy",
        [
            ArbitrationPolicy.ROUND_ROBIN,
            ArbitrationPolicy.WRITEBACK_FIRST,
        ],
    )
    def test_ss_bound_holds_under_arbitration_variants(self, policy):
        config = small_config(
            num_cores=4,
            partitions=[shared_partition(4, ways=4, sequencer=True)],
            llc_sets=1,
            llc_ways=4,
            arbitration=policy,
            max_slots=500_000,
        )
        report = simulate(config, storm_traces(4, 4, repeats=20))
        assert report.observed_bus_wcl() <= wcl_ss_cycles(self.params())
