"""Unit tests for address geometry and address ranges."""

import pytest

from repro.common.errors import GeometryError
from repro.mem.address import AddressGeometry, AddressRange


class TestAddressGeometry:
    def test_offset_bits(self):
        assert AddressGeometry(line_size=64, num_sets=16).offset_bits == 6

    def test_index_bits(self):
        assert AddressGeometry(line_size=64, num_sets=16).index_bits == 4

    def test_block_of(self):
        geometry = AddressGeometry(line_size=64, num_sets=16)
        assert geometry.block_of(0) == 0
        assert geometry.block_of(63) == 0
        assert geometry.block_of(64) == 1
        assert geometry.block_of(1000) == 15

    def test_set_index_wraps(self):
        geometry = AddressGeometry(line_size=64, num_sets=4)
        assert geometry.set_index(0) == 0
        assert geometry.set_index(64) == 1
        assert geometry.set_index(64 * 4) == 0

    def test_tag_of(self):
        geometry = AddressGeometry(line_size=64, num_sets=4)
        assert geometry.tag_of(0) == 0
        assert geometry.tag_of(64 * 4) == 1
        assert geometry.tag_of(64 * 9) == 2

    def test_block_roundtrip(self):
        geometry = AddressGeometry(line_size=64, num_sets=8)
        block = geometry.block_of(0x1234)
        base = geometry.block_base_address(block)
        assert base <= 0x1234 < base + 64

    def test_set_index_of_block_matches_address_path(self):
        geometry = AddressGeometry(line_size=64, num_sets=8)
        for address in (0, 64, 128, 640, 4096):
            assert geometry.set_index(address) == geometry.set_index_of_block(
                geometry.block_of(address)
            )

    def test_tag_of_block_matches_address_path(self):
        geometry = AddressGeometry(line_size=64, num_sets=8)
        for address in (0, 64, 128, 640, 4096):
            assert geometry.tag_of(address) == geometry.tag_of_block(
                geometry.block_of(address)
            )

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(GeometryError):
            AddressGeometry(line_size=48, num_sets=4)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(GeometryError):
            AddressGeometry(line_size=64, num_sets=3)

    def test_rejects_negative_address(self):
        geometry = AddressGeometry(line_size=64, num_sets=4)
        with pytest.raises(GeometryError):
            geometry.block_of(-1)

    def test_rejects_negative_block(self):
        geometry = AddressGeometry(line_size=64, num_sets=4)
        with pytest.raises(GeometryError):
            geometry.set_index_of_block(-1)


class TestAddressRange:
    def test_contains(self):
        address_range = AddressRange(base=100, size=50)
        assert 100 in address_range
        assert 149 in address_range
        assert 150 not in address_range
        assert 99 not in address_range

    def test_end(self):
        assert AddressRange(base=0, size=4096).end == 4096

    def test_overlap_detection(self):
        first = AddressRange(base=0, size=100)
        assert first.overlaps(AddressRange(base=50, size=100))
        assert first.overlaps(AddressRange(base=0, size=1))
        assert not first.overlaps(AddressRange(base=100, size=10))
        assert not first.overlaps(AddressRange(base=200, size=10))

    def test_overlap_is_symmetric(self):
        first = AddressRange(base=0, size=100)
        second = AddressRange(base=90, size=100)
        assert first.overlaps(second) == second.overlaps(first)

    def test_num_blocks_aligned(self):
        assert AddressRange(base=0, size=4096).num_blocks(64) == 64

    def test_num_blocks_unaligned_range(self):
        # 1 byte crossing a line boundary touches 2 lines.
        assert AddressRange(base=63, size=2).num_blocks(64) == 2

    def test_blocks_iterates_all(self):
        blocks = list(AddressRange(base=128, size=128).blocks(64))
        assert blocks == [2, 3]

    def test_rejects_zero_size(self):
        with pytest.raises(GeometryError):
            AddressRange(base=0, size=0)

    def test_rejects_negative_base(self):
        with pytest.raises(GeometryError):
            AddressRange(base=-1, size=10)
