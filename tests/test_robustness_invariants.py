"""The per-slot invariant monitor: clean runs pass, corruption fires.

Two obligations: (1) checked mode is *transparent* — a healthy
simulation produces the identical report with and without the monitor;
(2) every invariant *fires* — hand-corrupting the state it guards raises
an :class:`InvariantViolation` naming the invariant and carrying
slot/core/set context.
"""

import dataclasses

import pytest

from repro.common.errors import InvariantViolation, SimulationError
from repro.robustness.invariants import (
    InclusivityInvariant,
    InvariantMonitor,
    LatencyBoundInvariant,
    LlcConsistencyInvariant,
    OneOutstandingRequestInvariant,
    PartitionRoutingInvariant,
    PendingEvictAccountingInvariant,
    SequencerConsistencyInvariant,
    SlotAccountingInvariant,
    SlotSequenceInvariant,
    standard_invariants,
)
from repro.sim.simulator import Simulator, simulate
from sim_helpers import private_partitions, small_config, write_trace_of

TRACES = {
    0: write_trace_of([0, 1, 2, 3, 0, 1, 2, 3]),
    1: write_trace_of([8, 9, 10, 11, 8, 9, 10, 11]),
}


def checked(config):
    return dataclasses.replace(config, checked=True)


class TestCheckedMode:
    def test_clean_checked_run_matches_unchecked(self):
        config = small_config(num_cores=2, sequencer=True)
        plain = simulate(config, TRACES)
        monitored = simulate(checked(config), TRACES)
        assert monitored.makespan == plain.makespan
        assert monitored.observed_wcl() == plain.observed_wcl()
        assert monitored.requests == plain.requests

    def test_checked_run_with_private_partitions_is_clean(self):
        config = checked(small_config(num_cores=2, partitions=private_partitions(2)))
        traces = {0: write_trace_of([0, 1, 0, 1]), 1: write_trace_of([40, 41, 40])}
        report = simulate(config, traces)
        assert not report.timed_out

    def test_monitor_counts_checks(self):
        sim = Simulator(checked(small_config(num_cores=2)), TRACES)
        assert sim.monitor is not None
        sim.run()
        # Nine invariants, one check each per processed slot.
        assert sim.monitor.checks_run == 9 * sim.engine._slot
        assert sim.monitor.first_violation is None

    def test_unchecked_simulator_has_no_monitor(self):
        sim = Simulator(small_config(num_cores=2), TRACES)
        assert sim.monitor is None

    def test_standard_invariants_cover_the_documented_set(self):
        sim = Simulator(small_config(num_cores=2), TRACES)
        names = {inv.name for inv in standard_invariants(sim.system)}
        assert names == {
            "slot-sequence",
            "slot-accounting",
            "llc-consistency",
            "inclusivity",
            "pending-evict-accounting",
            "one-outstanding-request",
            "sequencer-fifo",
            "partition-routing",
            "latency-bound",
        }


def run_with(invariant_factory, corrupt, config=None, traces=None, at_slot=4):
    """Run a sim with one invariant installed, corrupting state mid-run.

    ``corrupt(engine)`` runs as a pre-slot hook at ``at_slot`` (the LLC
    has filled by then); returns the violation the invariant raised.
    """
    config = config or small_config(num_cores=2)
    sim = Simulator(config, traces or TRACES)
    monitor = InvariantMonitor([invariant_factory(sim)])
    monitor.install(sim.engine)

    fired = []

    def hook(engine, slot):
        if slot == at_slot and not fired:
            fired.append(slot)
            corrupt(engine)

    sim.engine.add_pre_slot_hook(hook)
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run()
    assert fired, "corruption hook never ran"
    assert monitor.first_violation is excinfo.value
    return excinfo.value


class TestEachInvariantFires:
    def test_slot_sequence_detects_skip(self):
        def corrupt(engine):
            engine._slot += 2

        violation = run_with(lambda sim: SlotSequenceInvariant(), corrupt)
        assert violation.invariant == "slot-sequence"
        assert violation.slot == 6
        assert "never processed" in str(violation)

    def test_slot_accounting_detects_extra_transaction(self):
        def corrupt(engine):
            engine._slot_usage[0]["idle"] += 1

        violation = run_with(lambda sim: SlotAccountingInvariant(), corrupt)
        assert violation.invariant == "slot-accounting"
        assert violation.slot == 4

    def test_llc_consistency_detects_index_corruption(self):
        def corrupt(engine):
            llc = engine.system.llc
            block, entry = next(iter(llc._valid_index.items()))
            entry.state = type(entry.state).FREE

        violation = run_with(lambda sim: LlcConsistencyInvariant(), corrupt)
        assert violation.invariant == "llc-consistency"

    def test_inclusivity_detects_silently_dropped_llc_line(self):
        def corrupt(engine):
            llc = engine.system.llc
            for block, entry in list(llc._valid_index.items()):
                if llc.directory.owners_of(block):
                    del llc._valid_index[block]
                    llc.directory.drop_block(block)
                    entry.state = type(entry.state).FREE
                    entry.block = None
                    entry.pending_writers.clear()
                    return
            raise AssertionError("no owned VALID line to drop")

        violation = run_with(lambda sim: InclusivityInvariant(), corrupt)
        assert violation.invariant == "inclusivity"
        assert violation.core is not None
        assert violation.set_index is not None

    def test_pending_evict_detects_lost_writeback(self):
        def corrupt(engine):
            llc = engine.system.llc
            for entry in llc.pending_entries():
                if entry.pending_writers:
                    writer = next(iter(entry.pending_writers))
                    engine.system.pwbs[writer]._queue.clear()
                    return
            # No eviction in flight at slot 4: fabricate one on a VALID
            # entry whose writer has nothing queued.
            block, entry = next(iter(llc._valid_index.items()))
            del llc._valid_index[block]
            entry.state = type(entry.state).PENDING_EVICT
            entry.pending_writers.add(0)
            llc._pending_index[block] = entry

        violation = run_with(lambda sim: PendingEvictAccountingInvariant(), corrupt)
        assert violation.invariant == "pending-evict-accounting"
        assert violation.core is not None
        assert violation.set_index is not None

    def test_one_outstanding_detects_lost_request(self):
        def corrupt(engine):
            for core_id, prb in engine.system.prbs.items():
                if prb.entry is not None:
                    prb._entry = None
                    return
            raise AssertionError("no outstanding request at slot 4")

        violation = run_with(lambda sim: OneOutstandingRequestInvariant(), corrupt)
        assert violation.invariant == "one-outstanding-request"
        assert "lost request" in str(violation)

    def test_sequencer_detects_queue_desync(self):
        config = small_config(num_cores=2, sequencer=True)

        def corrupt(engine):
            sequencer = next(iter(engine.system.sequencers.values()))
            # Queue a core that has no outstanding request on that set,
            # or desync an already-queued core's recorded set.
            for core_id, prb in engine.system.prbs.items():
                if prb.entry is None:
                    # Set 3 is unreachable: the shared partition folds
                    # every block to set 0, so this can never match.
                    sequencer._queued_set[core_id] = 3
                    return
            core_id = next(iter(sequencer._queued_set))
            sequencer._queued_set[core_id] = (sequencer._queued_set[core_id] + 1) % 4

        violation = run_with(
            lambda sim: SequencerConsistencyInvariant(), corrupt, config=config
        )
        assert violation.invariant == "sequencer-fifo"

    def test_partition_routing_detects_foreign_request(self):
        config = small_config(num_cores=2, partitions=private_partitions(2))
        traces = {
            0: write_trace_of([0, 1, 2, 3, 0, 1, 2, 3]),
            1: write_trace_of([40, 41, 40, 41, 40, 41]),
        }

        def corrupt(engine):
            # Retarget core 0 at a block resident in core 1's partition:
            # rewrite its remaining trace (and any in-flight request).
            from repro.workloads.trace import TraceRecord

            core = engine.system.cores[0]
            core.trace._records[core.position :] = [
                TraceRecord(40 * 64, record.access, record.compute_cycles)
                for record in core.trace._records[core.position :]
            ]
            request = engine.system.prbs[0].entry
            if request is not None:
                request.block = 40

        # Inject at slot 5 — owned by core 1 — so the monitor sees the
        # corrupted request before core 0's own slot tries to serve it.
        violation = run_with(
            lambda sim: PartitionRoutingInvariant(sim.system),
            corrupt,
            config=config,
            traces=traces,
            at_slot=5,
        )
        assert violation.invariant == "partition-routing"
        assert violation.core == 0
        assert violation.set_index is not None

    def test_latency_bound_detects_overrun(self):
        def corrupt(engine):
            # Backdate an in-flight request's broadcast (the engine only
            # stamps it when unset) so its apparent bus latency on
            # completion dwarfs any bound.
            for prb in engine.system.prbs.values():
                if prb.entry is not None:
                    prb.entry.first_on_bus_at = -10_000_000
                    return
            raise AssertionError("no outstanding request at slot 4")

        violation = run_with(
            lambda sim: LatencyBoundInvariant(sim.config), corrupt
        )
        assert violation.invariant == "latency-bound"
        assert violation.core is not None
        assert "bound" in str(violation)


class TestViolationContext:
    def test_message_names_slot_core_and_set(self):
        violation = InvariantViolation(
            "inclusivity", "boom", slot=7, core=1, set_index=3
        )
        text = str(violation)
        assert "invariant 'inclusivity'" in text
        assert "slot 7" in text
        assert "core 1" in text
        assert "set 3" in text
        assert violation.invariant == "inclusivity"
        assert (violation.slot, violation.core, violation.set_index) == (7, 1, 3)

    def test_violation_is_a_simulation_error(self):
        assert issubclass(InvariantViolation, SimulationError)
