"""Exporter tests: JSONL/CSV/Prometheus/table renderers and dispatch."""

import json

import pytest

from repro.common.errors import ObservabilityError
from repro.obs.exporters import (
    SUPPORTED_SUFFIXES,
    metrics_to_csv,
    metrics_to_jsonl,
    metrics_to_prometheus,
    render_metrics_table,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("sim.slots.total").inc(10)
    registry.gauge("llc.hit_rate").set(0.5)
    hist = registry.histogram("core.latency", bucket_width=50, core=0)
    hist.observe(10)
    hist.observe(10)
    hist.observe(120)
    return registry


class TestJsonl:
    def test_one_sorted_object_per_series(self):
        lines = metrics_to_jsonl(sample_registry()).splitlines()
        assert len(lines) == 3
        rows = [json.loads(line) for line in lines]
        assert [row["name"] for row in rows] == [
            "core.latency",
            "llc.hit_rate",
            "sim.slots.total",
        ]
        # Keys are sorted within each object → byte-stable output.
        for line, row in zip(lines, rows):
            assert line == json.dumps(row, sort_keys=True, separators=(",", ":"))

    def test_empty_registry(self):
        assert metrics_to_jsonl(MetricsRegistry()) == ""


class TestCsv:
    def test_long_form_rows(self):
        lines = metrics_to_csv(sample_registry()).splitlines()
        assert lines[0] == "name,labels,type,field,value"
        body = lines[1:]
        # Histogram flattens to buckets + 4 summary fields.
        assert "core.latency,core=0,histogram,bucket_0,2" in body
        assert "core.latency,core=0,histogram,bucket_100,1" in body
        assert "core.latency,core=0,histogram,count,3" in body
        assert "core.latency,core=0,histogram,sum,140" in body
        assert "llc.hit_rate,,gauge,value,0.5" in body
        assert "sim.slots.total,,counter,value,10" in body


class TestPrometheus:
    def test_exposition_format(self):
        text = metrics_to_prometheus(sample_registry())
        lines = text.splitlines()
        assert "# TYPE repro_core_latency histogram" in lines
        assert "# TYPE repro_llc_hit_rate gauge" in lines
        assert "# TYPE repro_sim_slots_total counter" in lines
        # Cumulative buckets with upper bounds, +Inf last.
        assert 'repro_core_latency_bucket{core="0",le="50"} 2' in lines
        assert 'repro_core_latency_bucket{core="0",le="150"} 3' in lines
        assert 'repro_core_latency_bucket{core="0",le="+Inf"} 3' in lines
        assert 'repro_core_latency_sum{core="0"} 140' in lines
        assert 'repro_core_latency_count{core="0"} 3' in lines
        assert "repro_sim_slots_total 10" in lines
        assert text.endswith("\n")

    def test_empty_registry(self):
        assert metrics_to_prometheus(MetricsRegistry()) == ""


class TestTable:
    def test_renders_all_series(self):
        text = render_metrics_table(sample_registry())
        assert "core.latency{core=0}" in text
        assert "count=3 sum=140" in text
        assert "0.5000" in text  # float gauges get 4 decimals

    def test_empty_registry(self):
        assert render_metrics_table(MetricsRegistry()) == "(no metrics)"


class TestWriteMetrics:
    @pytest.mark.parametrize("suffix", SUPPORTED_SUFFIXES)
    def test_dispatch_by_suffix(self, tmp_path, suffix):
        target = write_metrics(sample_registry(), tmp_path / f"m{suffix}")
        assert target.exists()
        assert target.read_text() != ""

    def test_unknown_suffix_is_an_error(self, tmp_path):
        with pytest.raises(ObservabilityError, match="unsupported metrics format"):
            write_metrics(sample_registry(), tmp_path / "metrics.xyz")

    def test_missing_parent_dir_is_an_error(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot write metrics"):
            write_metrics(sample_registry(), tmp_path / "nope" / "m.jsonl")

    def test_output_independent_of_insertion_order(self, tmp_path):
        forward = MetricsRegistry()
        forward.counter("a").inc(1)
        forward.counter("b").inc(2)
        backward = MetricsRegistry()
        backward.counter("b").inc(2)
        backward.counter("a").inc(1)
        out1 = write_metrics(forward, tmp_path / "f.jsonl")
        out2 = write_metrics(backward, tmp_path / "b.jsonl")
        assert out1.read_bytes() == out2.read_bytes()
