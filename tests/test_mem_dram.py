"""Unit tests for the DRAM backend model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.dram import Dram, DramConfig


class TestDramConfig:
    def test_defaults(self):
        config = DramConfig()
        assert config.fetch_latency > 0
        assert not config.serialize

    def test_rejects_zero_fetch_latency(self):
        with pytest.raises(ConfigurationError):
            DramConfig(fetch_latency=0)

    def test_rejects_negative_write_latency(self):
        with pytest.raises(ConfigurationError):
            DramConfig(write_latency=-1)


class TestDram:
    def test_fetch_completion_time(self):
        dram = Dram(DramConfig(fetch_latency=30))
        assert dram.fetch(block=5, now=100) == 130

    def test_write_back_completion_time(self):
        dram = Dram(DramConfig(write_latency=20))
        assert dram.write_back(block=5, now=10) == 30

    def test_counts_traffic(self):
        dram = Dram()
        dram.fetch(1, 0)
        dram.fetch(2, 0)
        dram.write_back(1, 0)
        assert dram.stats.reads == 2
        assert dram.stats.writes == 1

    def test_parallel_when_not_serialized(self):
        dram = Dram(DramConfig(fetch_latency=30, serialize=False))
        assert dram.fetch(1, now=0) == 30
        assert dram.fetch(2, now=0) == 30

    def test_serialized_transfers_queue(self):
        dram = Dram(DramConfig(fetch_latency=30, serialize=True))
        assert dram.fetch(1, now=0) == 30
        assert dram.fetch(2, now=0) == 60
        assert dram.fetch(3, now=100) == 130

    def test_serialized_mixes_reads_and_writes(self):
        dram = Dram(DramConfig(fetch_latency=30, write_latency=10, serialize=True))
        assert dram.fetch(1, now=0) == 30
        assert dram.write_back(2, now=0) == 40

    def test_reset_clears_state(self):
        dram = Dram(DramConfig(serialize=True))
        dram.fetch(1, 0)
        dram.reset()
        assert dram.stats.reads == 0
        assert dram.fetch(2, now=0) == dram.config.fetch_latency

    def test_busy_cycles_accumulate(self):
        dram = Dram(DramConfig(fetch_latency=30, write_latency=10))
        dram.fetch(1, 0)
        dram.write_back(2, 0)
        assert dram.stats.busy_cycles == 40
