"""Property-based tests: cache behaviour vs a reference model, trace IO."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sa_cache import SetAssociativeCache
from repro.common.types import AccessType
from repro.common.units import format_bytes, parse_bytes
from repro.workloads.trace import MemoryTrace, TraceRecord, read_trace, write_trace


class ReferenceLruCache:
    """A dict-based LRU reference model for one set-associative cache."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def _set(self, block):
        return self.sets[block % self.num_sets]

    def access(self, block) -> bool:
        target = self._set(block)
        if block in target:
            target.move_to_end(block)
            return True
        return False

    def fill(self, block):
        target = self._set(block)
        evicted = None
        if len(target) == self.ways:
            evicted, _ = target.popitem(last=False)
        target[block] = True
        return evicted


ops = st.lists(
    st.tuples(st.sampled_from(["access", "fill"]), st.integers(0, 40)),
    min_size=1,
    max_size=200,
)


@given(
    num_sets=st.sampled_from([1, 2, 4, 8]),
    ways=st.integers(min_value=1, max_value=8),
    operations=ops,
)
@settings(max_examples=60)
def test_lru_cache_matches_reference_model(num_sets, ways, operations):
    cache = SetAssociativeCache("sut", num_sets, ways, "lru")
    reference = ReferenceLruCache(num_sets, ways)
    for op, block in operations:
        if op == "access":
            assert cache.access(block, False) == reference.access(block)
        else:
            if cache.contains(block):
                # A fill of a resident block is illegal; model as access.
                cache.access(block, False)
                reference.access(block)
                continue
            evicted = cache.fill(block, dirty=False)
            ref_evicted = reference.fill(block)
            assert (evicted.block if evicted else None) == ref_evicted
    assert sorted(cache.resident_blocks()) == sorted(
        block for target in reference.sets for block in target
    )


@given(
    num_sets=st.sampled_from([1, 2, 4]),
    ways=st.integers(min_value=1, max_value=4),
    blocks=st.lists(st.integers(0, 30), min_size=1, max_size=100),
)
@settings(max_examples=60)
def test_occupancy_never_exceeds_capacity(num_sets, ways, blocks):
    cache = SetAssociativeCache("sut", num_sets, ways, "lru")
    for block in blocks:
        if not cache.access(block, False):
            if not cache.contains(block):
                cache.fill(block, dirty=False)
    assert cache.occupancy() <= cache.capacity_lines
    for set_index in range(num_sets):
        resident = [b for b in cache.resident_blocks() if b % num_sets == set_index]
        assert len(resident) <= ways


@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**40),
            st.sampled_from(list(AccessType)),
        ),
        max_size=200,
    )
)
@settings(max_examples=40)
def test_trace_file_roundtrip(tmp_path_factory, records):
    trace = MemoryTrace(
        [TraceRecord(address, access) for address, access in records], name="prop"
    )
    path = tmp_path_factory.mktemp("traces") / "trace.txt"
    write_trace(trace, path)
    assert read_trace(path) == trace


@given(size=st.integers(min_value=0, max_value=2**48))
def test_format_parse_bytes_roundtrip(size):
    assert parse_bytes(format_bytes(size)) == size


@given(
    line=st.sampled_from([32, 64, 128]),
    addresses=st.lists(st.integers(0, 2**20), min_size=1, max_size=50),
)
def test_footprint_blocks_matches_set_arithmetic(line, addresses):
    trace = MemoryTrace([TraceRecord(address) for address in addresses])
    assert trace.footprint_blocks(line) == len({a // line for a in addresses})
