"""Serial ≡ parallel metrics equivalence, down to exporter bytes.

The acceptance criterion for the observability layer: running any
experiment with ``--jobs N`` must produce metrics (and therefore
exported files) bit-identical to the serial run.  These tests exercise
the real fan-out paths — seed sweeps (parent-side collection) and the
figure grids (worker-side collection) — and compare at the strictest
level available: the rendered exporter bytes.
"""

import pytest

from sim_helpers import small_config

from repro.experiments.compare import compare_notations
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.obs.exporters import (
    metrics_to_csv,
    metrics_to_jsonl,
    metrics_to_prometheus,
)
from repro.sim.parallel import parallel_available
from repro.sim.sweeps import sweep_seeds
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="fork start method unavailable"
)

CONFIG = small_config(num_cores=2)
SEEDS = [1, 2, 3, 4]


def trace_factory(seed):
    workload = SyntheticWorkloadConfig(
        num_requests=20, address_range_size=512, seed=seed
    )
    return generate_disjoint_workload(workload, [0, 1])


def all_renderings(registry):
    return (
        metrics_to_jsonl(registry),
        metrics_to_csv(registry),
        metrics_to_prometheus(registry),
    )


def test_sweep_metrics_parallel_is_bit_identical():
    serial = sweep_seeds(CONFIG, trace_factory, SEEDS, jobs=1, with_metrics=True)
    parallel = sweep_seeds(
        CONFIG, trace_factory, SEEDS, jobs=3, with_metrics=True
    )
    assert all_renderings(parallel.metrics) == all_renderings(serial.metrics)
    # Seed labels scope every series, so nothing collided in the merge.
    assert parallel.metrics.get("sim.slots.total", seed=1) is not None


def test_fig7_metrics_parallel_is_bit_identical():
    kwargs = dict(address_ranges=(1024, 2048), num_requests=30, with_metrics=True)
    serial = run_fig7(jobs=1, **kwargs)
    parallel = run_fig7(jobs=3, **kwargs)
    assert all_renderings(parallel.metrics) == all_renderings(serial.metrics)


def test_fig8_metrics_parallel_is_bit_identical():
    kwargs = dict(address_ranges=(512, 1024), num_requests=40, with_metrics=True)
    serial = run_fig8("8a", jobs=1, **kwargs)
    parallel = run_fig8("8a", jobs=3, **kwargs)
    assert all_renderings(parallel.metrics) == all_renderings(serial.metrics)
    # Worker-side collection labels by subfigure/config/range.
    assert any(
        dict(labels).get("subfigure") == "8a"
        for (_, labels), _ in parallel.metrics
    )


def test_compare_metrics_parallel_is_bit_identical():
    notations = ["SS(1,16,4)", "P(1,16)"]
    serial = compare_notations(notations, num_requests=30, jobs=1, with_metrics=True)
    parallel = compare_notations(
        notations, num_requests=30, jobs=2, with_metrics=True
    )
    assert all_renderings(parallel.metrics) == all_renderings(serial.metrics)


def test_metrics_off_by_default():
    result = run_fig7(address_ranges=(1024,), num_requests=20)
    assert result.metrics is None
