"""Property-based tests: TDM schedule algebra and partition geometry."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.schedule import TdmSchedule, distance, one_slot_tdm
from repro.llc.partition import PartitionNotation, PartitionSpec

core_counts = st.integers(min_value=1, max_value=12)
slot_widths = st.integers(min_value=1, max_value=200)


@given(num_cores=core_counts, slot_width=slot_widths, data=st.data())
def test_corollary_4_3_distance_bounds(num_cores, slot_width, data):
    """1 <= d_{c_j}^{c_i} <= N for every pair under any 1S-TDM order."""
    order = data.draw(st.permutations(range(num_cores)))
    schedule = one_slot_tdm(num_cores, slot_width, order)
    for i in range(num_cores):
        for j in range(num_cores):
            d = distance(schedule, i, j)
            assert 1 <= d <= num_cores


@given(num_cores=st.integers(min_value=2, max_value=10), data=st.data())
def test_distance_triangle_around_ring(num_cores, data):
    """d(i->j) + d(j->i) == N for distinct cores (they sit on a ring)."""
    order = data.draw(st.permutations(range(num_cores)))
    schedule = one_slot_tdm(num_cores, 10, order)
    for i in range(num_cores):
        for j in range(num_cores):
            if i == j:
                continue
            assert distance(schedule, i, j) + distance(schedule, j, i) == num_cores


@given(
    owners=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=12),
    slot_width=slot_widths,
    slot=st.integers(min_value=0, max_value=10_000),
)
def test_slot_arithmetic_consistency(owners, slot_width, slot):
    schedule = TdmSchedule(owners, slot_width)
    start = schedule.slot_start(slot)
    assert schedule.slot_of_cycle(start) == slot
    assert schedule.slot_of_cycle(schedule.slot_end(slot) - 1) == slot
    assert schedule.owner_of_slot(slot) == owners[slot % len(owners)]


@given(
    owners=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=10),
    from_slot=st.integers(min_value=0, max_value=500),
)
def test_next_slot_of_is_first_owned_slot(owners, from_slot):
    schedule = TdmSchedule(owners, 10)
    for core in set(owners):
        next_slot = schedule.next_slot_of(core, from_slot)
        assert next_slot >= from_slot
        assert schedule.owner_of_slot(next_slot) == core
        # No earlier owned slot in between.
        for candidate in range(from_slot, next_slot):
            assert schedule.owner_of_slot(candidate) != core


@given(
    sets=st.lists(
        st.integers(min_value=0, max_value=63), min_size=1, max_size=16, unique=True
    ),
    way_lo=st.integers(min_value=0, max_value=14),
    way_span=st.integers(min_value=1, max_value=8),
    block=st.integers(min_value=0, max_value=10**9),
)
def test_fold_set_always_lands_in_partition(sets, way_lo, way_span, block):
    partition = PartitionSpec(
        "p", sets, (way_lo, way_lo + way_span), (0,)
    )
    assert partition.fold_set(block) in set(sets)


@given(
    sets=st.integers(min_value=1, max_value=64),
    ways=st.integers(min_value=1, max_value=32),
    cores=st.integers(min_value=1, max_value=16),
    kind=st.sampled_from(["SS", "NSS"]),
)
def test_notation_roundtrip_shared(sets, ways, cores, kind):
    text = f"{kind}({sets},{ways},{cores})"
    assert str(PartitionNotation.parse(text)) == text


@given(sets=st.integers(min_value=1, max_value=64), ways=st.integers(min_value=1, max_value=32))
def test_notation_roundtrip_private(sets, ways):
    text = f"P({sets},{ways})"
    assert str(PartitionNotation.parse(text)) == text
