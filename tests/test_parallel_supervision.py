"""Worker supervision: liveness watchdog, RSS guards, restarts.

The pool must tell a *hung* worker (no heartbeats — deadlock, livelock,
stuck syscall) from a merely *slow* one (heartbeating, just busy), tear
the former down promptly, restart it within budget, and quarantine it
with a typed error when the budget runs out.  A restarted simulation
task resumes from its last checkpoint when the auto-checkpoint policy
is installed — that composition is exercised at the end.
"""

import random
import time

import pytest

from repro.common.errors import (
    ConfigurationError,
    ResourceExceededError,
    TaskHungError,
    TaskTimeoutError,
)
from repro.obs.metrics import MetricsRegistry
from repro.robustness.checkpoint import (
    clear_auto_checkpoints,
    default_checkpoint_path,
    install_auto_checkpoints,
)
from repro.robustness.runner import CampaignRunner
from repro.sim import parallel
from repro.sim.parallel import TaskPool, parallel_available
from repro.sim.simulator import Simulator, simulate
from sim_helpers import small_config, write_trace_of

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="fork start method unavailable"
)


def _hang_forever():
    """Simulated deadlock: stop heartbeating, then block.

    Runs in a forked child, so flipping the module global only silences
    that child's heartbeat thread — the parent sees a worker gone quiet
    while the process is still alive.
    """
    parallel._HEARTBEATS_DISABLED = True
    time.sleep(60)
    return "never"


def _slow_but_alive():
    time.sleep(1.2)
    return "eventually"


# ----------------------------------------------------------------------
# Construction validation
# ----------------------------------------------------------------------
def test_pool_rejects_bad_supervision_parameters():
    with pytest.raises(ConfigurationError):
        TaskPool(jobs=2, hung_after=0)
    with pytest.raises(ConfigurationError):
        TaskPool(jobs=2, hung_after=1.0, heartbeat_interval=0)
    with pytest.raises(ConfigurationError):
        TaskPool(jobs=2, max_restarts=-1)
    with pytest.raises(ConfigurationError):
        TaskPool(jobs=2, rss_limit_bytes=0)
    with pytest.raises(ConfigurationError):
        TaskPool(jobs=2, kill_grace=-1.0)


# ----------------------------------------------------------------------
# Liveness: hung vs slow
# ----------------------------------------------------------------------
def test_hung_worker_is_detected_and_torn_down():
    registry = MetricsRegistry()
    pool = TaskPool(
        jobs=2, hung_after=0.6, timeout=30.0, registry=registry
    )
    started = time.monotonic()
    results = pool.run([("stuck", _hang_forever), ("fine", lambda: 42)])
    elapsed = time.monotonic() - started

    by_name = {r.name: r for r in results}
    assert by_name["fine"].ok and by_name["fine"].value == 42
    stuck = by_name["stuck"]
    assert stuck.status == "hung"
    assert isinstance(stuck.error, TaskHungError)
    assert "no heartbeat" in str(stuck.error)
    # Detection must come from the watchdog (sub-second), not from the
    # 30s hard budget or the worker's 60s sleep.
    assert elapsed < 15.0

    rows = {row["name"]: row for row in registry.rows()}
    assert rows["pool.hung_workers"]["value"] == 1


def test_slow_but_heartbeating_worker_is_not_killed():
    # Slow past hung_after many times over, but the heartbeat thread
    # keeps beating — only the hard timeout may kill it, and it is
    # generous here.
    pool = TaskPool(jobs=1, hung_after=0.3, timeout=30.0)
    results = pool.run([("slow", _slow_but_alive)])
    assert results[0].ok
    assert results[0].value == "eventually"
    assert results[0].restarts == 0


def test_timeout_applies_to_heartbeating_worker_and_never_restarts():
    pool = TaskPool(jobs=1, hung_after=0.3, timeout=0.5, max_restarts=3)
    results = pool.run([("slow", lambda: time.sleep(30))])
    assert results[0].status == "timeout"
    assert isinstance(results[0].error, TaskTimeoutError)
    assert results[0].restarts == 0


def test_heartbeat_gap_histogram_is_populated():
    registry = MetricsRegistry()
    pool = TaskPool(jobs=1, hung_after=0.4, registry=registry)
    results = pool.run([("beat", _slow_but_alive)])
    assert results[0].ok
    rows = {row["name"]: row for row in registry.rows()}
    assert rows["pool.heartbeat_gap"]["count"] >= 1


# ----------------------------------------------------------------------
# Restarts
# ----------------------------------------------------------------------
def _hang_once_then_recover(flag):
    def task():
        if not flag.exists():
            flag.write_text("first attempt hung here\n")
            parallel._HEARTBEATS_DISABLED = True
            time.sleep(60)
        return "recovered"

    return task


def test_hung_worker_restarts_and_completes(tmp_path):
    registry = MetricsRegistry()
    flag = tmp_path / "hung-once"
    pool = TaskPool(
        jobs=1, hung_after=0.6, max_restarts=1, registry=registry
    )
    results = pool.run([("flaky", _hang_once_then_recover(flag))])
    assert results[0].ok
    assert results[0].value == "recovered"
    assert results[0].restarts == 1

    rows = {
        (row["name"], tuple(sorted(row["labels"].items()))): row
        for row in registry.rows()
    }
    key = ("pool.worker_restarts", (("kind", "hung"),))
    assert rows[key]["value"] == 1


def test_restart_budget_exhaustion_quarantines():
    pool = TaskPool(jobs=1, hung_after=0.5, max_restarts=1)
    results = pool.run([("stuck", _hang_forever)])
    assert results[0].status == "hung"
    assert results[0].restarts == 1
    assert "1 restart(s) used" in str(results[0].error)


# ----------------------------------------------------------------------
# Resource guards
# ----------------------------------------------------------------------
def _memory_hog():
    hoard = []
    for _ in range(64):
        hoard.append(bytearray(8 << 20))  # 8 MiB chunks, 512 MiB total
        time.sleep(0.01)
    return len(hoard)


def test_rss_guard_quarantines_memory_hog():
    registry = MetricsRegistry()
    pool = TaskPool(
        jobs=1,
        hung_after=5.0,
        rss_limit_bytes=128 << 20,
        registry=registry,
    )
    results = pool.run([("hog", _memory_hog)])
    assert results[0].status == "resource_exceeded"
    assert isinstance(results[0].error, ResourceExceededError)
    assert "memory" in str(results[0].error)

    rows = {row["name"]: row for row in registry.rows()}
    assert rows["pool.resource_exceeded"]["value"] == 1


def test_rss_guard_leaves_small_workers_alone():
    pool = TaskPool(jobs=2, rss_limit_bytes=512 << 20)
    results = pool.run([(f"t{i}", lambda i=i: i) for i in range(4)])
    assert [r.value for r in results] == [0, 1, 2, 3]
    assert all(r.ok for r in results)


# ----------------------------------------------------------------------
# Campaign integration: quarantine signatures and checkpoint restarts
# ----------------------------------------------------------------------
def test_campaign_quarantines_hung_task_with_typed_signature(tmp_path):
    manifest_path = tmp_path / "manifest.json"
    runner = CampaignRunner(
        manifest_path=manifest_path, jobs=2, hung_after=0.6
    )
    result = runner.run(
        [("stuck", _hang_forever), ("fine", lambda: "ok")]
    )
    by_name = {o.name: o for o in result.outcomes}
    assert by_name["fine"].status == "done"
    assert by_name["stuck"].status == "quarantined"
    assert by_name["stuck"].error_type == "TaskHungError"

    # The quarantine signature is durable: a resumed campaign sees it.
    from repro.robustness.runner import RunManifest

    entry = RunManifest.load(manifest_path).entry("stuck")
    assert entry["status"] == "quarantined"
    assert entry["error_type"] == "TaskHungError"


def _checkpointed_then_hang(config, traces, flag, ckpt_path):
    def task():
        if not flag.exists():
            # First attempt: make real progress, checkpoint it, then
            # deadlock.  The checkpoint is all the parent can rely on.
            flag.write_text("hung after checkpointing\n")
            sim = Simulator(config, traces)
            sim.engine.run(stop_at_slot=23)
            sim.checkpoint(ckpt_path)
            parallel._HEARTBEATS_DISABLED = True
            time.sleep(60)
        # Restarted attempt: the inherited auto-checkpoint policy makes
        # simulate() resume from the file the first attempt left behind.
        resumed_from_checkpoint = ckpt_path.exists()
        report = simulate(config, traces)
        return resumed_from_checkpoint, report.latencies()

    return task


def test_restarted_task_resumes_from_last_checkpoint(tmp_path):
    rng = random.Random(21)
    config = small_config()
    traces = {
        0: write_trace_of([rng.randrange(32) for _ in range(300)]),
        1: write_trace_of([rng.randrange(32) for _ in range(300)]),
    }
    reference = simulate(config, traces)

    ckpt_dir = tmp_path / "ckpts"
    ckpt_dir.mkdir()
    ckpt_path = default_checkpoint_path(ckpt_dir, config, traces)
    flag = tmp_path / "first-attempt"

    install_auto_checkpoints(ckpt_dir, every_slots=16)
    try:
        pool = TaskPool(jobs=1, hung_after=0.6, max_restarts=1)
        results = pool.run(
            [
                (
                    "sim",
                    _checkpointed_then_hang(config, traces, flag, ckpt_path),
                )
            ]
        )
    finally:
        clear_auto_checkpoints()

    assert results[0].ok
    assert results[0].restarts == 1
    resumed_from_checkpoint, latencies = results[0].value
    assert resumed_from_checkpoint, "restart should find the checkpoint"
    assert latencies == reference.latencies()
    # Clean completion removes the checkpoint file.
    assert not ckpt_path.exists()


def test_campaign_merges_restarted_results_correctly(tmp_path):
    # A campaign where one task hangs once and recovers must produce
    # the same merged results as one where nothing hung.
    flag = tmp_path / "hiccup"
    runner = CampaignRunner(jobs=2, hung_after=0.6, max_restarts=1)
    result = runner.run(
        [
            ("a", lambda: 1),
            ("b", _hang_once_then_recover(flag)),
            ("c", lambda: 3),
        ]
    )
    assert [o.name for o in result.outcomes] == ["a", "b", "c"]
    assert [o.status for o in result.outcomes] == ["done"] * 3
