"""Tests for the JSON-Lines event exporter."""

import json

import pytest

from repro.common.errors import ReproError
from repro.sim.export import write_events_jsonl
from repro.sim.simulator import Simulator, simulate

from sim_helpers import shared_partition, small_config, write_trace_of


@pytest.fixture(scope="module")
def report():
    config = small_config(num_cores=2)
    traces = {0: write_trace_of([0, 4]), 1: write_trace_of([1, 5])}
    return simulate(config, traces)


class TestEventsJsonl:
    def test_one_line_per_event(self, report, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(report, path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(report.events)

    def test_lines_are_valid_json_with_fields(self, report, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(report, path)
        for line in path.read_text().splitlines():
            event = json.loads(line)
            assert {"cycle", "slot", "kind", "core", "block", "set", "way",
                    "detail"} <= set(event)

    def test_kinds_match_log(self, report, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(report, path)
        kinds = [json.loads(line)["kind"] for line in path.read_text().splitlines()]
        assert kinds == [event.kind.value for event in report.events]

    def test_empty_log_rejected(self, tmp_path):
        import dataclasses

        config = dataclasses.replace(small_config(num_cores=1), record_events=False)
        empty_report = simulate(config, {0: write_trace_of([0])})
        with pytest.raises(ReproError, match="record_events"):
            write_events_jsonl(empty_report, tmp_path / "none.jsonl")
