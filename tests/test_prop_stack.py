"""Property-based tests of the private stack's inclusive discipline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessType
from repro.cpu.private_stack import PrivateStack, PrivateStackConfig

CONFIGS = [
    PrivateStackConfig(l1_sets=1, l1_ways=1, l2_sets=2, l2_ways=2),
    PrivateStackConfig(l1_sets=2, l1_ways=2, l2_sets=4, l2_ways=2),
    PrivateStackConfig(l1_sets=0, l2_sets=2, l2_ways=2),
]

operations = st.lists(
    st.tuples(
        st.sampled_from(["access", "fill", "invalidate"]),
        st.integers(min_value=0, max_value=15),
        st.sampled_from([AccessType.READ, AccessType.WRITE, AccessType.INSTR]),
    ),
    min_size=1,
    max_size=120,
)


def drive(stack: PrivateStack, ops) -> None:
    for op, block, access in ops:
        if op == "access":
            stack.access(block, access)
        elif op == "fill":
            if not stack.l2.contains(block):
                stack.fill_from_llc(block, access)
            else:
                stack.access(block, access)
        else:
            stack.invalidate_block(block)


@given(ops=operations, config_index=st.integers(0, len(CONFIGS) - 1))
@settings(max_examples=80)
def test_l1_always_subset_of_l2(ops, config_index):
    stack = PrivateStack(0, CONFIGS[config_index])
    drive(stack, ops)
    stack.check_l1_inclusion()


@given(ops=operations, config_index=st.integers(0, len(CONFIGS) - 1))
@settings(max_examples=80)
def test_occupancy_never_exceeds_l2_capacity(ops, config_index):
    config = CONFIGS[config_index]
    stack = PrivateStack(0, config)
    drive(stack, ops)
    assert stack.l2.occupancy() <= config.l2_capacity_lines


@given(ops=operations)
@settings(max_examples=80)
def test_invalidate_removes_everywhere(ops):
    stack = PrivateStack(0, CONFIGS[1])
    drive(stack, ops)
    for block in list(stack.resident_blocks()):
        removed = stack.invalidate_block(block)
        assert removed is not None
        assert not stack.contains(block)


@given(ops=operations)
@settings(max_examples=60)
def test_dirtiness_only_from_writes(ops):
    """A stack that never sees a write never holds a dirty line."""
    read_only = [
        (op, block, AccessType.READ if access is AccessType.WRITE else access)
        for op, block, access in ops
    ]
    stack = PrivateStack(0, CONFIGS[1])
    drive(stack, read_only)
    for block in stack.resident_blocks():
        assert not stack.is_dirty(block)


@given(ops=operations)
@settings(max_examples=60)
def test_write_fill_leaves_dirty_copy(ops):
    stack = PrivateStack(0, CONFIGS[1])
    drive(stack, ops)
    if not stack.l2.contains(99):
        stack.fill_from_llc(99, AccessType.WRITE)
        assert stack.is_dirty(99)
