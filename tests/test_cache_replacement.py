"""Unit tests for every replacement policy."""

import random

import pytest

from repro.cache.replacement import (
    POLICY_NAMES,
    FifoPolicy,
    LruPolicy,
    MruPolicy,
    NmruPolicy,
    OraclePolicy,
    PlruTreePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.common.errors import ConfigurationError


ALL_WAYS = list(range(4))


class TestLru:
    def test_untouched_way_is_victim(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2):
            policy.on_fill(way)
        assert policy.victim(ALL_WAYS) == 3

    def test_least_recent_fill_order(self):
        policy = LruPolicy(4)
        for way in (3, 1, 0, 2):
            policy.on_fill(way)
        assert policy.victim(ALL_WAYS) == 3

    def test_access_refreshes(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_access(0)
        assert policy.victim(ALL_WAYS) == 1

    def test_invalidate_makes_way_preferred(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_invalidate(2)
        assert policy.victim(ALL_WAYS) == 2

    def test_restricted_candidates(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        assert policy.victim([2, 3]) == 2

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            LruPolicy(4).victim([])

    def test_rejects_out_of_range_candidate(self):
        with pytest.raises(ValueError):
            LruPolicy(4).victim([4])


class TestMru:
    def test_most_recent_is_victim(self):
        policy = MruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_access(1)
        assert policy.victim(ALL_WAYS) == 1


class TestNmru:
    def test_avoids_most_recent(self):
        policy = NmruPolicy(4)
        policy.on_access(0)
        assert policy.victim(ALL_WAYS) != 0

    def test_falls_back_when_only_mru_available(self):
        policy = NmruPolicy(4)
        policy.on_access(2)
        assert policy.victim([2]) == 2

    def test_invalidate_clears_mru(self):
        policy = NmruPolicy(4)
        policy.on_access(0)
        policy.on_invalidate(0)
        assert policy.victim([0]) == 0


class TestFifo:
    def test_first_filled_is_victim(self):
        policy = FifoPolicy(4)
        for way in (2, 0, 3, 1):
            policy.on_fill(way)
        assert policy.victim(ALL_WAYS) == 2

    def test_access_does_not_refresh(self):
        policy = FifoPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_access(0)
        assert policy.victim(ALL_WAYS) == 0


class TestRoundRobin:
    def test_rotates(self):
        policy = RoundRobinPolicy(4)
        assert policy.victim(ALL_WAYS) == 0
        assert policy.victim(ALL_WAYS) == 1
        assert policy.victim(ALL_WAYS) == 2
        assert policy.victim(ALL_WAYS) == 3
        assert policy.victim(ALL_WAYS) == 0

    def test_skips_excluded_ways(self):
        policy = RoundRobinPolicy(4)
        assert policy.victim([2, 3]) == 2
        assert policy.victim([0, 1]) == 0


class TestRandom:
    def test_deterministic_with_seed(self):
        first = RandomPolicy(4, random.Random(42))
        second = RandomPolicy(4, random.Random(42))
        picks_a = [first.victim(ALL_WAYS) for _ in range(20)]
        picks_b = [second.victim(ALL_WAYS) for _ in range(20)]
        assert picks_a == picks_b

    def test_only_candidates_chosen(self):
        policy = RandomPolicy(4, random.Random(1))
        for _ in range(50):
            assert policy.victim([1, 3]) in (1, 3)


class TestPlruTree:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            PlruTreePolicy(6)

    def test_victim_avoids_recent_accesses(self):
        policy = PlruTreePolicy(4)
        policy.on_access(0)
        assert policy.victim(ALL_WAYS) in (2, 3)
        policy.on_access(2)
        victim = policy.victim(ALL_WAYS)
        assert victim in (1, 3)

    def test_full_access_cycle_never_picks_last_touched(self):
        policy = PlruTreePolicy(8)
        for way in range(8):
            policy.on_access(way)
            assert policy.victim(list(range(8))) != way

    def test_restricted_candidates_respected(self):
        policy = PlruTreePolicy(4)
        policy.on_access(0)
        policy.on_access(1)
        assert policy.victim([0, 1]) in (0, 1)


class TestOracle:
    def test_defaults_to_first_candidate(self):
        assert OraclePolicy(4).victim([2, 3]) == 2

    def test_chooser_receives_set_index(self):
        seen = {}

        def chooser(candidates, set_index):
            seen["set"] = set_index
            return candidates[-1]

        policy = OraclePolicy(4, chooser)
        policy.bind_set(7)
        assert policy.victim(ALL_WAYS) == 3
        assert seen["set"] == 7

    def test_rejects_chooser_outside_candidates(self):
        policy = OraclePolicy(4, lambda candidates, _set: 3)
        with pytest.raises(ValueError):
            policy.victim([0, 1])

    def test_set_chooser_replaces(self):
        policy = OraclePolicy(4)
        policy.set_chooser(lambda candidates, _set: candidates[-1])
        assert policy.victim(ALL_WAYS) == 3


class TestFactory:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_builds_every_name(self, name):
        policy = make_policy(name, 4, random.Random(0))
        assert policy.victim(ALL_WAYS) in ALL_WAYS

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown replacement"):
            make_policy("clock", 4)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 4), LruPolicy)
