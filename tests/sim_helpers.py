"""Shared builders for the test suite (imported by test modules)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.bus.arbiter import ArbitrationPolicy
from repro.bus.schedule import TdmSchedule
from repro.common.types import AccessType, CoreId
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.workloads.trace import MemoryTrace, TraceRecord

#: Default line size used by the small test systems.
LINE = 64


def shared_partition(
    num_cores: int,
    sets: Sequence[int] = (0,),
    ways: int = 4,
    sequencer: bool = False,
) -> PartitionSpec:
    """One partition shared by all ``num_cores`` cores."""
    return PartitionSpec(
        name="shared",
        sets=list(sets),
        way_range=(0, ways),
        cores=tuple(range(num_cores)),
        sequencer=sequencer,
    )


def private_partitions(
    num_cores: int, sets_per_core: int = 1, ways: int = 4
) -> list[PartitionSpec]:
    """A distinct partition per core in consecutive set rows."""
    return [
        PartitionSpec(
            name=f"core{core}",
            sets=list(
                range(core * sets_per_core, (core + 1) * sets_per_core)
            ),
            way_range=(0, ways),
            cores=(core,),
        )
        for core in range(num_cores)
    ]


def small_config(
    num_cores: int = 2,
    partitions: Optional[Sequence[PartitionSpec]] = None,
    llc_sets: int = 4,
    llc_ways: int = 4,
    slot_width: int = 50,
    schedule: Optional[TdmSchedule] = None,
    sequencer: bool = False,
    arbitration: ArbitrationPolicy = ArbitrationPolicy.ROUND_ROBIN,
    self_writeback_in_slot: bool = True,
    record_events: bool = True,
    max_slots: int = 100_000,
    llc_policy: str = "lru",
) -> SystemConfig:
    """A small, fast system for unit-level engine tests."""
    if partitions is None:
        partitions = [
            shared_partition(num_cores, ways=llc_ways, sequencer=sequencer)
        ]
    return SystemConfig(
        num_cores=num_cores,
        partitions=list(partitions),
        slot_width=slot_width,
        schedule=schedule,
        llc_sets=llc_sets,
        llc_ways=llc_ways,
        llc_policy=llc_policy,
        arbitration=arbitration,
        self_writeback_in_slot=self_writeback_in_slot,
        record_events=record_events,
        max_slots=max_slots,
    )


def trace_of_blocks(
    blocks: Sequence[int],
    access: AccessType = AccessType.WRITE,
    line_size: int = LINE,
    name: str = "test",
) -> MemoryTrace:
    """A trace touching the given block addresses in order."""
    return MemoryTrace(
        [TraceRecord(block * line_size, access) for block in blocks],
        name=name,
    )


def write_trace_of(blocks: Sequence[int]) -> MemoryTrace:
    """All-write trace over block addresses."""
    return trace_of_blocks(blocks, AccessType.WRITE)


def read_trace_of(blocks: Sequence[int]) -> MemoryTrace:
    """All-read trace over block addresses."""
    return trace_of_blocks(blocks, AccessType.READ)
