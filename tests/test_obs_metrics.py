"""Unit tests of the metrics registry: instruments, identity, merge."""

import pickle

import pytest

from repro.common.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    canonical_labels,
    format_labels,
    merge_all,
)


class TestInstruments:
    def test_counter_sums(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.merged(Counter(value=7)).value == 12

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)

    def test_gauge_merges_by_max(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.merged(Gauge(value=9)).value == 9
        assert Gauge(value=9).merged(gauge).value == 9

    def test_histogram_buckets_by_width(self):
        histogram = Histogram(bucket_width=50)
        for value in (0, 49, 50, 149):
            histogram.observe(value)
        assert histogram.buckets == {0: 2, 50: 1, 100: 1}
        assert histogram.count == 4
        assert histogram.value_sum == 248
        assert histogram.value_min == 0
        assert histogram.value_max == 149
        assert histogram.mean == pytest.approx(62.0)

    def test_histogram_bulk_observe(self):
        histogram = Histogram(bucket_width=1)
        histogram.observe_bucket(3, 10)
        histogram.observe_bucket(0, 2)
        histogram.observe_bucket(5, 0)  # no-op
        assert histogram.buckets == {3: 10, 0: 2}
        assert histogram.count == 12
        assert histogram.value_sum == 30

    def test_histogram_rejects_bad_width_and_counts(self):
        with pytest.raises(ObservabilityError):
            Histogram(bucket_width=0)
        with pytest.raises(ObservabilityError):
            Histogram(bucket_width=1).observe_bucket(0, -1)

    def test_histogram_merge_conserves_counts(self):
        left = Histogram(bucket_width=10)
        right = Histogram(bucket_width=10)
        for value in (1, 11, 21):
            left.observe(value)
        for value in (5, 35):
            right.observe(value)
        merged = left.merged(right)
        assert merged.count == 5
        assert sum(merged.buckets.values()) == merged.count
        assert merged.value_min == 1
        assert merged.value_max == 35
        # Operands are untouched.
        assert left.count == 3 and right.count == 2

    def test_histogram_merge_width_mismatch(self):
        with pytest.raises(ObservabilityError):
            Histogram(bucket_width=10).merged(Histogram(bucket_width=20))


class TestLabels:
    def test_canonical_labels_sort_and_stringify(self):
        assert canonical_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_format_labels(self):
        assert format_labels((("a", "1"), ("b", "2"))) == "a=1,b=2"
        assert format_labels(()) == ""


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        registry.counter("hits", core=1).inc()
        registry.counter("hits", core=1).inc()
        assert registry.counter("hits", core=1).value == 2
        # Different labels → different series.
        assert registry.counter("hits", core=2).value == 0
        assert len(registry) == 2

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.histogram("x", bucket_width=10)

    def test_histogram_width_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("lat", bucket_width=50)
        with pytest.raises(ObservabilityError):
            registry.histogram("lat", bucket_width=25)

    def test_iteration_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a", core=2)
        registry.counter("a", core=1)
        keys = [key for key, _ in registry]
        assert keys == sorted(keys)

    def test_get_and_names(self):
        registry = MetricsRegistry()
        registry.gauge("level", core=0).set(7)
        assert registry.get("level", core=0).value == 7
        assert registry.get("level", core=1) is None
        assert registry.names() == ["level"]

    def test_merged_is_pure(self):
        left = MetricsRegistry()
        left.counter("n").inc(1)
        right = MetricsRegistry()
        right.counter("n").inc(2)
        merged = left.merged(right)
        assert merged.counter("n").value == 3
        assert left.counter("n").value == 1
        assert right.counter("n").value == 2
        # Mutating the merge result must not leak into operands.
        merged.counter("n").inc(100)
        assert right.counter("n").value == 2

    def test_merged_kind_conflict(self):
        left = MetricsRegistry()
        left.counter("x")
        right = MetricsRegistry()
        right.gauge("x")
        with pytest.raises(ObservabilityError):
            left.merged(right)

    def test_relabel_scopes_series(self):
        registry = MetricsRegistry()
        registry.counter("n", core=0).inc(5)
        scoped = registry.relabel(config="SS(1,16,4)")
        assert scoped.counter("n", core=0, config="SS(1,16,4)").value == 5
        # Original is untouched.
        assert registry.counter("n", core=0).value == 5

    def test_relabel_refuses_overwrite(self):
        registry = MetricsRegistry()
        registry.counter("n", core=0)
        with pytest.raises(ObservabilityError):
            registry.relabel(core=9)

    def test_rows_canonical_shape(self):
        registry = MetricsRegistry()
        registry.histogram("lat", bucket_width=50, core=0).observe(60)
        registry.counter("n").inc(2)
        rows = registry.rows()
        assert [row["name"] for row in rows] == ["lat", "n"]
        hist_row = rows[0]
        assert hist_row["type"] == "histogram"
        assert hist_row["buckets"] == {"50": 1}
        assert hist_row["labels"] == {"core": "0"}
        assert rows[1] == {
            "name": "n",
            "labels": {},
            "type": "counter",
            "value": 2,
        }

    def test_registry_survives_pickling(self):
        registry = MetricsRegistry()
        registry.counter("n", core=1).inc(3)
        registry.histogram("lat", bucket_width=50).observe(99)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.rows() == registry.rows()

    def test_merge_all_empty_and_fold(self):
        assert merge_all([]).rows() == []
        parts = []
        for value in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("n").inc(value)
            parts.append(registry)
        assert merge_all(parts).counter("n").value == 6
