"""Unit tests for the partitioned LLC entry lifecycle and the directory."""

import pytest

from repro.common.errors import GeometryError, SimulationError
from repro.common.types import EntryState
from repro.llc.directory import OwnerDirectory
from repro.llc.llc import PartitionedLlc, WritebackOutcome
from repro.llc.partition import PartitionMap, PartitionSpec


def make_llc(num_sets=2, num_ways=2, cores=(0, 1), policy="lru"):
    partition = PartitionSpec(
        "shared", list(range(num_sets)), (0, num_ways), cores
    )
    pmap = PartitionMap([partition], num_sets, num_ways)
    return PartitionedLlc(num_sets, num_ways, pmap, policy=policy)


class TestOwnerDirectory:
    def test_add_and_query(self):
        directory = OwnerDirectory()
        directory.add_owner(0, 10)
        directory.add_owner(1, 10)
        assert directory.owners_of(10) == frozenset({0, 1})
        assert directory.is_owner(0, 10)
        assert directory.has_owner(10)

    def test_remove_owner(self):
        directory = OwnerDirectory()
        directory.add_owner(0, 10)
        directory.remove_owner(0, 10)
        assert not directory.has_owner(10)
        assert directory.tracked_blocks() == 0

    def test_remove_nonowner_is_idempotent(self):
        directory = OwnerDirectory()
        directory.remove_owner(0, 10)
        directory.add_owner(1, 10)
        directory.remove_owner(0, 10)
        assert directory.owners_of(10) == frozenset({1})

    def test_drop_block_returns_owners(self):
        directory = OwnerDirectory()
        directory.add_owner(0, 10)
        assert directory.drop_block(10) == frozenset({0})
        assert directory.drop_block(10) == frozenset()

    def test_require_no_owner(self):
        directory = OwnerDirectory()
        directory.add_owner(2, 5)
        with pytest.raises(SimulationError):
            directory.require_no_owner(5)


class TestLlcLookupAndAllocate:
    def test_miss_then_allocate_then_hit(self):
        llc = make_llc()
        assert llc.lookup(0, 10) is None
        entry = llc.allocate(0, 10)
        assert entry.state is EntryState.VALID
        hit = llc.lookup(0, 10)
        assert hit is entry
        assert llc.stats.hits == 1 and llc.stats.misses == 1

    def test_allocate_sets_owner(self):
        llc = make_llc()
        llc.allocate(0, 10)
        assert llc.directory.is_owner(0, 10)

    def test_fold_places_block(self):
        llc = make_llc(num_sets=2)
        entry = llc.allocate(0, 5)  # 5 % 2 == 1
        assert entry.set_index == 1

    def test_allocate_without_free_entry_rejected(self):
        llc = make_llc(num_sets=1, num_ways=1)
        llc.allocate(0, 0)
        with pytest.raises(SimulationError):
            llc.allocate(0, 1)

    def test_double_allocate_rejected(self):
        llc = make_llc()
        llc.allocate(0, 10)
        with pytest.raises(SimulationError, match="already resident"):
            llc.allocate(1, 10)

    def test_free_entry_reports_availability(self):
        llc = make_llc(num_sets=1, num_ways=2)
        assert llc.free_entry(0, 0) is not None
        llc.allocate(0, 0)
        llc.allocate(0, 1)
        assert llc.free_entry(0, 2) is None

    def test_probe_has_no_stat_effect(self):
        llc = make_llc()
        llc.probe(0, 10)
        assert llc.stats.accesses == 0

    def test_add_owner_requires_valid_block(self):
        llc = make_llc()
        with pytest.raises(SimulationError):
            llc.add_owner(0, 99)


class TestEvictionLifecycle:
    def fill_set(self, llc, blocks=(0, 2)):
        for block in blocks:
            llc.allocate(0, block)

    def test_choose_victim_none_when_empty(self):
        llc = make_llc()
        assert llc.choose_victim(0, 0) is None

    def test_choose_victim_reports_owners(self):
        llc = make_llc(num_sets=1, num_ways=1)
        llc.allocate(1, 0)
        victim = llc.choose_victim(0, 4)
        assert victim.block == 0
        assert victim.owners == frozenset({1})

    def test_eviction_with_dirty_owner_goes_pending(self):
        llc = make_llc(num_sets=1, num_ways=1)
        llc.allocate(1, 0)
        victim = llc.choose_victim(0, 4)
        freed = llc.begin_eviction(victim, dirty_owners=[1])
        assert not freed
        entry = llc.entry(0, 0)
        assert entry.state is EntryState.PENDING_EVICT
        assert entry.pending_writers == {1}
        assert llc.block_is_pending(0)

    def test_eviction_without_dirty_owner_frees_now(self):
        llc = make_llc(num_sets=1, num_ways=1)
        llc.allocate(1, 0)
        victim = llc.choose_victim(0, 4)
        freed = llc.begin_eviction(victim, dirty_owners=[])
        assert freed
        assert llc.entry(0, 0).state is EntryState.FREE
        assert not llc.directory.has_owner(0)

    def test_pending_entry_does_not_hit(self):
        llc = make_llc(num_sets=1, num_ways=1)
        llc.allocate(1, 0)
        llc.begin_eviction(llc.choose_victim(0, 4), dirty_owners=[1])
        assert llc.lookup(1, 0) is None

    def test_writeback_frees_pending_entry(self):
        llc = make_llc(num_sets=1, num_ways=1)
        llc.allocate(1, 0)
        llc.begin_eviction(llc.choose_victim(0, 4), dirty_owners=[1])
        outcome = llc.complete_writeback(1, 0)
        assert outcome is WritebackOutcome.FREED
        assert llc.entry(0, 0).state is EntryState.FREE

    def test_multi_owner_pending_until_last_writer(self):
        llc = make_llc(num_sets=1, num_ways=1)
        llc.allocate(0, 0)
        llc.add_owner(1, 0)
        victim = llc.choose_victim(0, 4)
        llc.begin_eviction(victim, dirty_owners=[0, 1])
        assert llc.complete_writeback(0, 0) is WritebackOutcome.PENDING
        assert llc.complete_writeback(1, 0) is WritebackOutcome.FREED

    def test_capacity_writeback_updates_valid_entry(self):
        llc = make_llc()
        llc.allocate(0, 10)
        outcome = llc.complete_writeback(0, 10)
        assert outcome is WritebackOutcome.UPDATED
        assert llc.entry(llc.fold(0, 10), 0).dirty

    def test_writeback_for_absent_block_goes_dram_direct(self):
        llc = make_llc()
        assert llc.complete_writeback(0, 77) is WritebackOutcome.DRAM_DIRECT

    def test_stale_victim_rejected(self):
        llc = make_llc(num_sets=1, num_ways=1)
        llc.allocate(1, 0)
        victim = llc.choose_victim(0, 4)
        llc.begin_eviction(victim, dirty_owners=[])
        with pytest.raises(SimulationError, match="stale victim"):
            llc.begin_eviction(victim, dirty_owners=[])

    def test_region_availability(self):
        llc = make_llc(num_sets=1, num_ways=2)
        assert llc.region_availability(0, 0) == (2, 0)
        llc.allocate(0, 0)
        llc.allocate(1, 1)
        assert llc.region_availability(0, 0) == (0, 0)
        llc.begin_eviction(llc.choose_victim(0, 2), dirty_owners=[0])
        assert llc.region_availability(0, 0) == (0, 1)

    def test_note_private_drop_clears_ownership(self):
        llc = make_llc()
        llc.allocate(0, 10)
        llc.note_private_drop(0, 10)
        assert not llc.directory.is_owner(0, 10)


class TestWayPartitionIsolation:
    def make_two_partition_llc(self):
        parts = [
            PartitionSpec("a", [0], (0, 1), (0,)),
            PartitionSpec("b", [0], (1, 2), (1,)),
        ]
        pmap = PartitionMap(parts, 1, 2)
        return PartitionedLlc(1, 2, pmap)

    def test_allocation_restricted_to_partition_ways(self):
        llc = self.make_two_partition_llc()
        entry = llc.allocate(0, 10)
        assert entry.way == 0
        entry_b = llc.allocate(1, 11)
        assert entry_b.way == 1

    def test_lookup_does_not_cross_partition(self):
        llc = self.make_two_partition_llc()
        llc.allocate(0, 10)
        assert llc.lookup(1, 10) is None

    def test_victims_chosen_within_partition(self):
        llc = self.make_two_partition_llc()
        llc.allocate(0, 10)
        llc.allocate(1, 11)
        victim = llc.choose_victim(0, 12)
        assert victim.way == 0 and victim.block == 10


class TestInvariantsAndValidation:
    def test_validate_clean_llc(self):
        llc = make_llc()
        llc.allocate(0, 0)
        llc.validate()

    def test_validate_detects_corruption(self):
        llc = make_llc()
        llc.allocate(0, 0)
        llc.entry(0, 0).block = 99  # corrupt behind the index's back
        with pytest.raises(SimulationError):
            llc.validate()

    def test_occupancy_counts(self):
        llc = make_llc(num_sets=2, num_ways=2)
        llc.allocate(0, 0)
        llc.allocate(0, 1)
        assert llc.occupancy() == 2
        assert llc.pending_evictions() == 0

    def test_geometry_mismatch_with_map_rejected(self):
        partition = PartitionSpec("p", [0], (0, 2), (0,))
        pmap = PartitionMap([partition], 1, 2)
        with pytest.raises(GeometryError):
            PartitionedLlc(2, 2, pmap)

    def test_oracle_policy_accessor(self):
        llc = make_llc(policy="oracle")
        llc.oracle_policy(0).set_chooser(lambda candidates, _s: candidates[-1])
        llc.allocate(0, 0)
        llc.allocate(0, 2)
        victim = llc.choose_victim(0, 4)
        assert victim.way == 1

    def test_oracle_accessor_rejected_for_other_policies(self):
        llc = make_llc(policy="lru")
        with pytest.raises(SimulationError):
            llc.oracle_policy(0)
