"""Golden-trace regression suite: byte-stable traces and metrics.

Every scenario in :mod:`golden_scenarios` re-runs here and must
reproduce its committed fixture byte-for-byte.  A failure means the
simulator's observable behaviour (event stream, trace encoding, metric
catalogue or exporter formatting) changed; if the change is
intentional, regenerate with::

    PYTHONPATH=src:tests python tests/golden/regen.py

and commit the reviewed fixture diff.
"""

import hashlib
import json

import pytest

from golden_scenarios import SCENARIOS, fixture_paths, run_scenario

from repro.obs.tracing import TRACE_SCHEMA_VERSION


@pytest.fixture(scope="module")
def scenario_bytes():
    """Each scenario simulated once, shared by the per-aspect tests."""
    return {name: run_scenario(name) for name in sorted(SCENARIOS)}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_matches_fixture(name, scenario_bytes):
    trace_path, _ = fixture_paths(name)
    assert trace_path.exists(), (
        f"missing fixture {trace_path}; run tests/golden/regen.py"
    )
    trace_bytes, _ = scenario_bytes[name]
    expected = trace_path.read_bytes()
    if trace_bytes != expected:
        ours = hashlib.sha256(trace_bytes).hexdigest()[:12]
        theirs = hashlib.sha256(expected).hexdigest()[:12]
        pytest.fail(
            f"{name}: event trace drifted from fixture "
            f"(sha256 {ours} != {theirs}); if intentional, regenerate "
            "with tests/golden/regen.py and review the diff"
        )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_metrics_match_fixture(name, scenario_bytes):
    _, metrics_path = fixture_paths(name)
    assert metrics_path.exists(), (
        f"missing fixture {metrics_path}; run tests/golden/regen.py"
    )
    _, metrics_bytes = scenario_bytes[name]
    assert metrics_bytes == metrics_path.read_bytes(), (
        f"{name}: metrics export drifted from fixture; if intentional, "
        "regenerate with tests/golden/regen.py and review the diff"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fixture_is_valid_jsonl(name):
    """Fixtures themselves stay parseable (guards hand-edits)."""
    trace_path, metrics_path = fixture_paths(name)
    for path in (trace_path, metrics_path):
        for line in path.read_text().splitlines():
            row = json.loads(line)
            assert isinstance(row, dict)


def test_trace_schema_version_is_pinned():
    """Bumping the schema must come with regenerated fixtures.

    The fixtures encode schema version 1 layouts; this assertion makes
    a version bump fail loudly here (next to the regeneration
    instructions) rather than deep inside a byte comparison.
    """
    assert TRACE_SCHEMA_VERSION == 1


def test_run_scenario_is_deterministic():
    """Two in-process runs of one scenario agree — the fixture premise."""
    first = run_scenario("fig8-nss")
    second = run_scenario("fig8-nss")
    assert first == second
