"""Regression: summary rollups count each task exactly once.

A campaign task that is quarantined, then retried after a resume, ends
up with *two* entries in an accumulated outcome list but only one
(final) manifest entry.  The old inline rollup iterated the outcome
list, so ``summary.json`` / ``SUMMARY.txt`` re-counted the retried
task; :func:`repro.robustness.runner.write_campaign_summaries` dedupes
by task id and always summarises from the final manifest entry.
"""

import json

import pytest

from repro.robustness.runner import (
    CampaignResult,
    CampaignRunner,
    RetryPolicy,
    RunManifest,
    TaskOutcome,
    write_campaign_summaries,
)


def _outcome(name, status, **kw):
    defaults = dict(attempts=1, elapsed_seconds=0.1)
    defaults.update(kw)
    return TaskOutcome(name=name, status=status, **defaults)


def _manifest_entry(status, passed=None, error=None):
    return {
        "status": status,
        "attempts": 1,
        "elapsed_seconds": 0.1,
        "error": error,
        "error_type": None if error is None else "ValueError",
        "payload": None if passed is None else {"passed": passed, "checks": {"ok": passed}},
    }


def test_duplicate_outcomes_summarised_once(tmp_path):
    manifest = RunManifest(tmp_path / "manifest.json")
    manifest.tasks = {
        "figure-7": _manifest_entry("done", passed=True),
        "tightness": _manifest_entry("done", passed=True),
    }
    result = CampaignResult(
        outcomes=[
            # quarantined in the first attempt, retried after resume:
            # the accumulated outcome list holds figure-7 twice.
            _outcome(
                "figure-7",
                "quarantined",
                error="boom",
                error_type="ValueError",
            ),
            _outcome("tightness", "done"),
            _outcome("figure-7", "done"),
        ],
        manifest=manifest,
    )
    write_campaign_summaries(tmp_path, result)

    lines = (tmp_path / "SUMMARY.txt").read_text().splitlines()
    assert lines == ["PASS  figure-7", "PASS  tightness"]
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert list(summary) == ["figure-7", "tightness"]
    assert summary["figure-7"] == {"ok": True}


def test_summary_uses_final_manifest_state_not_outcome_status(tmp_path):
    # The outcome list says quarantined; the manifest (written by the
    # retry) says done.  The manifest wins.
    manifest = RunManifest(tmp_path / "manifest.json")
    manifest.tasks = {"flaky": _manifest_entry("done", passed=True)}
    result = CampaignResult(
        outcomes=[
            _outcome(
                "flaky", "quarantined", error="boom", error_type="ValueError"
            )
        ],
        manifest=manifest,
    )
    write_campaign_summaries(tmp_path, result)
    assert (tmp_path / "SUMMARY.txt").read_text() == "PASS  flaky\n"


def test_manifest_only_tasks_appended_sorted(tmp_path):
    # Tasks finished by an earlier (differently-scoped) run appear in
    # the manifest but not this campaign's outcomes; they are appended
    # after the campaign order, sorted, once.
    manifest = RunManifest(tmp_path / "manifest.json")
    manifest.tasks = {
        "z-old": _manifest_entry("done", passed=False),
        "a-old": _manifest_entry("quarantined", error="died"),
        "current": _manifest_entry("done", passed=True),
    }
    result = CampaignResult(
        outcomes=[_outcome("current", "done")], manifest=manifest
    )
    write_campaign_summaries(tmp_path, result)
    lines = (tmp_path / "SUMMARY.txt").read_text().splitlines()
    assert lines == ["PASS  current", "QUARANTINED  a-old", "FAIL  z-old"]
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["a-old"] == {"quarantined": "died"}


def test_quarantine_resume_retry_end_to_end(tmp_path):
    """The full loop: fail, resume, succeed — summarised exactly once."""
    manifest_path = tmp_path / "manifest.json"
    calls = {"n": 0}

    class Artifact:
        checks = {"reproduced": True}
        passed = True

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise ValueError("first attempt dies")
        return Artifact()

    runner = CampaignRunner(
        manifest_path=manifest_path, retry=RetryPolicy(max_attempts=1)
    )
    first = runner.run([("flaky", flaky)], resume=True)
    assert [o.status for o in first.outcomes] == ["quarantined"]

    second = CampaignRunner(
        manifest_path=manifest_path, retry=RetryPolicy(max_attempts=1)
    ).run([("flaky", flaky)], resume=True)
    assert [o.status for o in second.outcomes] == ["done"]

    # A driver that accumulates outcomes across the resume sees the
    # task twice; the summary still counts it once, as done.
    combined = CampaignResult(
        outcomes=first.outcomes + second.outcomes,
        manifest=second.manifest,
    )
    write_campaign_summaries(tmp_path, combined)
    text = (tmp_path / "SUMMARY.txt").read_text()
    assert text == "PASS  flaky\n"
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary == {"flaky": {"reproduced": True}}


def test_summaries_require_manifest(tmp_path):
    with pytest.raises(AssertionError):
        write_campaign_summaries(tmp_path, CampaignResult(outcomes=[]))
