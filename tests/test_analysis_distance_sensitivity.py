"""Unit tests for the distance tracker and the bound sensitivity sweeps."""

import pytest

from repro.analysis.distance import DistanceTracker, line_distance
from repro.analysis.sensitivity import (
    sweep_partition_lines,
    sweep_sharers,
    sweep_ways,
)
from repro.analysis.wcl import SharedPartitionParams
from repro.bus.schedule import TdmSchedule, one_slot_tdm
from repro.common.errors import AnalysisError


def base_params():
    return SharedPartitionParams(
        total_cores=4,
        sharers=4,
        ways=16,
        partition_lines=32,
        core_capacity_lines=64,
        slot_width=50,
    )


class TestLineDistance:
    def test_unowned_line_has_no_distance(self):
        assert line_distance(one_slot_tdm(4, 50), None, 0) is None

    def test_matches_schedule_distance(self):
        schedule = one_slot_tdm(4, 50)
        assert line_distance(schedule, 3, 0) == 1
        assert line_distance(schedule, 1, 0) == 3


class TestDistanceTracker:
    def make_tracker(self):
        return DistanceTracker(schedule=one_slot_tdm(4, 50), observer=0)

    def test_records_trajectory(self):
        tracker = self.make_tracker()
        tracker.record(0, block=5, owner=2)
        tracker.record(100, block=5, owner=3)
        assert tracker.trajectory(5) == [2, 1]

    def test_observation1_non_increasing(self):
        # Figure 3: owner goes c3 -> c4 -> freed; distance 2 -> 1 -> None.
        tracker = self.make_tracker()
        tracker.record(0, 5, owner=2)
        tracker.record(100, 5, owner=3)
        tracker.record(200, 5, owner=None)
        assert tracker.is_non_increasing(5)
        assert tracker.increases(5) == 0

    def test_observation3_increase_detected(self):
        # Figure 4: after c_ua's write-back the owner jumps from c4
        # (distance 1) to c2 (distance 3... here owner index 1).
        tracker = self.make_tracker()
        tracker.record(0, 5, owner=3)   # distance 1
        tracker.record(100, 5, owner=1)  # distance 3 — increased
        assert not tracker.is_non_increasing(5)
        assert tracker.increases(5) == 1

    def test_gap_resets_comparison(self):
        # Freed then re-occupied by a farther owner is legal: the
        # comparison must not span the None gap.
        tracker = self.make_tracker()
        tracker.record(0, 5, owner=3)       # distance 1
        tracker.record(100, 5, owner=None)  # freed
        tracker.record(200, 5, owner=1)     # distance 3 after the gap
        assert tracker.is_non_increasing(5)

    def test_unknown_block_is_trivially_monotone(self):
        assert self.make_tracker().is_non_increasing(99)

    def test_requires_one_slot_schedule(self):
        with pytest.raises(Exception):
            DistanceTracker(schedule=TdmSchedule((0, 1, 1), 50), observer=0)

    def test_observer_must_be_scheduled(self):
        with pytest.raises(AnalysisError):
            DistanceTracker(schedule=one_slot_tdm(2, 50), observer=5)


class TestSensitivitySweeps:
    def test_sweep_sharers_monotone_nss(self):
        points = sweep_sharers(base_params(), [2, 3, 4])
        nss = [point.nss_cycles for point in points]
        assert nss == sorted(nss)
        assert nss[0] < nss[-1]

    def test_sweep_sharers_labels(self):
        points = sweep_sharers(base_params(), [2, 3])
        assert [point.value for point in points] == [2, 3]
        assert all(point.parameter == "sharers" for point in points)

    def test_sweep_ways_ss_flat(self):
        points = sweep_ways(base_params(), [2, 4, 8, 16])
        ss = {point.ss_cycles for point in points}
        assert len(ss) == 1  # Theorem 4.8 is way-independent

    def test_sweep_ways_nss_grows(self):
        points = sweep_ways(base_params(), [2, 4, 8])
        nss = [point.nss_cycles for point in points]
        assert nss == sorted(nss) and nss[0] < nss[-1]

    def test_sweep_partition_lines_ss_flat_nss_grows(self):
        points = sweep_partition_lines(base_params(), [16, 32, 64])
        assert len({point.ss_cycles for point in points}) == 1
        nss = [point.nss_cycles for point in points]
        assert nss[0] < nss[-1]

    def test_reduction_property(self):
        point = sweep_partition_lines(base_params(), [32])[0]
        assert point.reduction == pytest.approx(
            point.nss_cycles / point.ss_cycles
        )
