"""Unit tests for crash-consistent checkpoints (repro.robustness.checkpoint).

Covers the checkpoint file format (integrity hash, versioning, refusal
paths), torn-write fault injection (a kill mid-save must leave the
previous checkpoint generation intact), the run-manifest version gate
and the atomic metrics exporters.
"""

import dataclasses
import json
import os
import random

import pytest

from repro.common.errors import (
    CampaignError,
    CheckpointError,
    ConfigurationError,
    ObservabilityError,
    PersistenceError,
)
from repro.common import fileio
from repro.common.fileio import atomic_write_text, cleanup_stale_tmp, tmp_sibling
from repro.obs.exporters import metrics_to_jsonl, write_metrics
from repro.obs.metrics import MetricsRegistry
from repro.robustness.checkpoint import (
    CHECKPOINT_VERSION,
    AutoCheckpointPolicy,
    combined_fingerprint,
    config_fingerprint,
    default_checkpoint_path,
    load_checkpoint,
    save_checkpoint,
    snapshot_simulator,
    trace_fingerprint,
)
from repro.robustness.runner import MANIFEST_VERSION, RunManifest
from repro.sim.simulator import Simulator, simulate
from sim_helpers import small_config, write_trace_of


def _canonical(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _workload(seed=7, length=300, blocks=32):
    rng = random.Random(seed)
    return {
        0: write_trace_of([rng.randrange(blocks) for _ in range(length)]),
        1: write_trace_of([rng.randrange(blocks) for _ in range(length)]),
    }


# ----------------------------------------------------------------------
# Fingerprints and default paths
# ----------------------------------------------------------------------
def test_fingerprints_separate_configs_and_traces():
    config = small_config()
    other = dataclasses.replace(config, seed=99)
    assert config_fingerprint(config) != config_fingerprint(other)
    # The engine choice is part of the config identity: a checkpoint
    # written under one engine must not restore under the other.
    assert config_fingerprint(config) != config_fingerprint(
        dataclasses.replace(config, engine="reference")
    )
    assert trace_fingerprint(write_trace_of([1, 2, 3])) != trace_fingerprint(
        write_trace_of([1, 2, 4])
    )


def test_default_checkpoint_path_is_stable_and_distinct(tmp_path):
    config = small_config()
    traces = _workload()
    path = default_checkpoint_path(tmp_path, config, traces)
    assert path.parent == tmp_path
    assert path.name == f"sim-{combined_fingerprint(config, traces)[:24]}.ckpt"
    assert path == default_checkpoint_path(tmp_path, config, traces)
    assert path != default_checkpoint_path(
        tmp_path, dataclasses.replace(config, seed=2), traces
    )


# ----------------------------------------------------------------------
# Round-trip state identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_snapshot_round_trip_is_state_identical(tmp_path, engine):
    config = dataclasses.replace(small_config(), engine=engine)
    traces = _workload()
    path = tmp_path / "mid.ckpt"

    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=23)
    sim.checkpoint(path)

    restored = Simulator.restore(path, config, traces)
    assert _canonical(snapshot_simulator(sim)) == _canonical(
        snapshot_simulator(restored)
    )


@pytest.mark.parametrize("llc_policy", ["random", "plru", "fifo"])
def test_round_trip_covers_every_policy_state(tmp_path, llc_policy):
    # Random shares one RNG across all sets; PLRU carries tree bits;
    # FIFO carries fill clocks.  Each must survive the round trip.
    config = small_config(llc_policy=llc_policy)
    traces = _workload(seed=llc_policy)
    path = tmp_path / "mid.ckpt"

    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=31)
    sim.checkpoint(path)
    restored = Simulator.restore(path, config, traces)
    assert _canonical(snapshot_simulator(sim)) == _canonical(
        snapshot_simulator(restored)
    )

    # ... and the rest of the run is identical to the uninterrupted one.
    reference = Simulator(config, traces).run()
    resumed = restored.engine.run()
    assert resumed.latencies() == reference.latencies()
    assert resumed.slot_usage == reference.slot_usage


def test_checkpoint_file_is_deleted_on_completion(tmp_path):
    config = small_config()
    traces = _workload()
    path = tmp_path / "run.ckpt"
    report = simulate(
        config, traces, checkpoint_path=path, checkpoint_every_slots=16
    )
    assert report.latencies() == simulate(config, traces).latencies()
    assert not path.exists()


# ----------------------------------------------------------------------
# Refusals: state the checkpoint cannot carry
# ----------------------------------------------------------------------
def test_oracle_policy_is_refused():
    config = small_config(llc_policy="oracle")
    sim = Simulator(config, _workload())
    with pytest.raises(CheckpointError, match="oracle"):
        snapshot_simulator(sim)


def test_foreign_hooks_are_refused():
    config = small_config()
    sim = Simulator(config, _workload())
    sim.engine.add_pre_slot_hook(lambda slot, cycle: None)
    with pytest.raises(CheckpointError, match="pre-slot hooks"):
        snapshot_simulator(sim)

    sim = Simulator(config, _workload())
    sim.engine.add_post_slot_hook(lambda slot, cycle: None)
    with pytest.raises(CheckpointError, match="post-slot hooks"):
        snapshot_simulator(sim)


def test_checked_mode_monitor_is_allowed_and_reseeded(tmp_path):
    config = dataclasses.replace(small_config(), checked=True)
    traces = _workload()
    path = tmp_path / "checked.ckpt"

    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=17)
    sim.checkpoint(path)

    restored = Simulator.restore(path, config, traces)
    # The reseeded invariant monitor must stay quiet for the remainder
    # of the run, and the outcome must match the uninterrupted one.
    resumed = restored.run()
    reference = Simulator(config, traces).run()
    assert resumed.latencies() == reference.latencies()


def test_restore_refuses_mismatched_config_and_traces(tmp_path):
    config = small_config()
    traces = _workload()
    path = tmp_path / "mid.ckpt"
    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=9)
    sim.checkpoint(path)

    with pytest.raises(CheckpointError, match="different configuration"):
        Simulator.restore(path, dataclasses.replace(config, seed=2), traces)
    with pytest.raises(CheckpointError, match="engine choice"):
        Simulator.restore(path, config, traces, engine="reference")
    with pytest.raises(CheckpointError, match="different workload traces"):
        Simulator.restore(path, config, _workload(seed=99))


# ----------------------------------------------------------------------
# load_checkpoint error paths
# ----------------------------------------------------------------------
def _written_checkpoint(tmp_path):
    config = small_config()
    traces = _workload()
    path = tmp_path / "good.ckpt"
    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=5)
    sim.checkpoint(path)
    return path


def _rewrite_payload(path, mutate):
    document = json.loads(path.read_text())
    mutate(document["payload"])
    import hashlib

    body = _canonical(document["payload"])
    document["integrity"] = hashlib.sha256(body.encode()).hexdigest()
    path.write_text(_canonical(document) + "\n")


def test_load_checkpoint_error_paths(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read checkpoint"):
        load_checkpoint(tmp_path / "absent.ckpt")

    garbage = tmp_path / "garbage.ckpt"
    garbage.write_text("{truncated")
    with pytest.raises(CheckpointError, match="not valid JSON"):
        load_checkpoint(garbage)

    no_payload = tmp_path / "nopayload.ckpt"
    no_payload.write_text('{"integrity": "x"}')
    with pytest.raises(CheckpointError, match="no payload section"):
        load_checkpoint(no_payload)

    path = _written_checkpoint(tmp_path)
    document = json.loads(path.read_text())
    document["payload"]["state"]["engine"]["slot"] += 1  # silent corruption
    path.write_text(_canonical(document) + "\n")
    with pytest.raises(CheckpointError, match="integrity check"):
        load_checkpoint(path)


def test_load_checkpoint_version_gate(tmp_path):
    path = _written_checkpoint(tmp_path)

    def set_kind(payload):
        payload["kind"] = "something-else"

    _rewrite_payload(path, set_kind)
    with pytest.raises(CheckpointError, match="not a simulation checkpoint"):
        load_checkpoint(path)

    path = _written_checkpoint(tmp_path)

    def break_version(payload):
        payload["version"] = "two"

    _rewrite_payload(path, break_version)
    with pytest.raises(CheckpointError, match="malformed version"):
        load_checkpoint(path)

    path = _written_checkpoint(tmp_path)

    def newer_version(payload):
        payload["version"] = CHECKPOINT_VERSION + 1

    _rewrite_payload(path, newer_version)
    with pytest.raises(CheckpointError, match="newer repro build"):
        load_checkpoint(path)

    path = _written_checkpoint(tmp_path)

    def zero_version(payload):
        payload["version"] = 0

    _rewrite_payload(path, zero_version)
    with pytest.raises(CheckpointError, match="unsupported version"):
        load_checkpoint(path)


def test_checkpoint_metrics_counters(tmp_path):
    config = small_config()
    traces = _workload()
    path = tmp_path / "metered.ckpt"
    registry = MetricsRegistry()

    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=5)
    save_checkpoint(sim, path, registry=registry)
    load_checkpoint(path, registry=registry)

    rows = {row["name"]: row for row in registry.rows()}
    assert rows["checkpoint.saves"]["value"] == 1
    assert rows["checkpoint.restores"]["value"] == 1
    assert rows["checkpoint.bytes"]["value"] == len(path.read_bytes())


# ----------------------------------------------------------------------
# Torn writes: a kill mid-save never loses the previous generation
# ----------------------------------------------------------------------
def _interrupted_save(tmp_path, monkeypatch, boom, expect=None):
    """Write a valid checkpoint, then make the *next* save die in
    ``os.replace`` — the moment a torn write would clobber the target."""
    config = small_config()
    traces = _workload()
    path = tmp_path / "torn.ckpt"
    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=9)
    sim.checkpoint(path)
    before = path.read_bytes()

    sim.engine.run(stop_at_slot=20)
    real_replace = os.replace

    def dying_replace(src, dst):
        raise boom

    monkeypatch.setattr(os, "replace", dying_replace)
    with pytest.raises(expect or type(boom)):
        sim.checkpoint(path)
    monkeypatch.setattr(os, "replace", real_replace)
    return config, traces, path, before


def test_torn_write_keeps_previous_checkpoint_valid(tmp_path, monkeypatch):
    # An ESSENTIAL save retries, then fails loudly as PersistenceError
    # (never a bare OSError: the retry budget is already spent).
    fileio.set_essential_retry(
        fileio.EssentialRetryPolicy(backoff_base=0.0)
    )
    try:
        config, traces, path, before = _interrupted_save(
            tmp_path, monkeypatch, OSError("disk full"),
            expect=PersistenceError,
        )
    finally:
        fileio.set_essential_retry(fileio.EssentialRetryPolicy())
    # The target was never touched and the failed write cleaned up its
    # own temp sibling — an ENOSPC mid-save leaks no partial data.
    assert path.read_bytes() == before
    assert not tmp_sibling(path).exists()
    restored = Simulator.restore(path, config, traces)
    assert restored.engine._slot == 9


def test_sigint_during_save_keeps_previous_checkpoint_valid(
    tmp_path, monkeypatch
):
    # KeyboardInterrupt is what an in-process SIGINT raises; landing it
    # inside the save path must leave the previous generation intact.
    config, traces, path, before = _interrupted_save(
        tmp_path, monkeypatch, KeyboardInterrupt()
    )
    assert path.read_bytes() == before
    restored = Simulator.restore(path, config, traces)
    resumed = restored.run()
    assert resumed.latencies() == Simulator(config, traces).run().latencies()


def test_sigterm_during_fsync_keeps_previous_checkpoint_valid(
    tmp_path, monkeypatch
):
    # Dying even earlier — during the temp file's fsync — is equally
    # safe: the target is untouched until the final rename.
    config = small_config()
    traces = _workload()
    path = tmp_path / "fsync.ckpt"
    sim = Simulator(config, traces)
    sim.engine.run(stop_at_slot=9)
    sim.checkpoint(path)
    before = path.read_bytes()

    sim.engine.run(stop_at_slot=20)

    def dying_fsync(fd):
        raise SystemExit(143)  # what a handled SIGTERM exits with

    monkeypatch.setattr(os, "fsync", dying_fsync)
    with pytest.raises(SystemExit):
        sim.checkpoint(path)
    monkeypatch.undo()
    assert path.read_bytes() == before
    assert Simulator.restore(path, config, traces).engine._slot == 9


# ----------------------------------------------------------------------
# Auto-checkpoint policy validation and simulate() plumbing
# ----------------------------------------------------------------------
def test_auto_policy_validation(tmp_path):
    with pytest.raises(CheckpointError, match="every_slots or every_secs"):
        AutoCheckpointPolicy(directory=tmp_path)
    with pytest.raises(CheckpointError, match="must be positive"):
        AutoCheckpointPolicy(directory=tmp_path, every_slots=0)
    with pytest.raises(CheckpointError, match="must be positive"):
        AutoCheckpointPolicy(directory=tmp_path, every_secs=-1.0)


def test_simulate_rejects_interval_without_path():
    with pytest.raises(ConfigurationError, match="without checkpoint_path"):
        simulate(small_config(), _workload(), checkpoint_every_slots=16)


# ----------------------------------------------------------------------
# Satellite: manifest version gate
# ----------------------------------------------------------------------
def test_manifest_rejects_newer_version_with_actionable_error(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(
        json.dumps({"version": MANIFEST_VERSION + 1, "tasks": {}}) + "\n"
    )
    with pytest.raises(CampaignError, match="newer repro build") as excinfo:
        RunManifest.load(path)
    # The error must tell the user what to *do*, not just what broke.
    assert "upgrade this installation" in str(excinfo.value)
    assert "delete the manifest" in str(excinfo.value)


def test_manifest_load_sweeps_stale_tmp(tmp_path):
    path = tmp_path / "manifest.json"
    manifest = RunManifest(path)
    manifest.record("t1", {"status": "done", "payload": 1})
    tmp_sibling(path).write_text("torn")
    loaded = RunManifest.load(path)
    assert loaded.is_done("t1")
    assert not tmp_sibling(path).exists()


# ----------------------------------------------------------------------
# Satellite: atomic metrics exporters
# ----------------------------------------------------------------------
def test_write_metrics_is_atomic_and_sweeps_stale_tmp(tmp_path):
    registry = MetricsRegistry()
    registry.counter("demo.count").inc(3)
    target = tmp_path / "metrics.jsonl"
    tmp_sibling(target).write_text("torn half-write from a dead process")

    write_metrics(registry, target)
    assert target.read_text() == metrics_to_jsonl(registry)
    assert not tmp_sibling(target).exists()


def test_write_metrics_torn_write_keeps_previous_export(
    tmp_path, monkeypatch
):
    registry = MetricsRegistry()
    registry.counter("demo.count").inc(1)
    target = tmp_path / "metrics.prom"
    write_metrics(registry, target)
    before = target.read_bytes()

    registry.counter("demo.count").inc(1)

    def dying_replace(src, dst):
        raise OSError("kill landed here")

    monkeypatch.setattr(os, "replace", dying_replace)
    with pytest.raises(ObservabilityError, match="cannot write metrics"):
        write_metrics(registry, target)
    monkeypatch.undo()
    assert target.read_bytes() == before


def test_atomic_write_text_respects_mkdir_flag(tmp_path):
    nested = tmp_path / "made" / "file.txt"
    atomic_write_text(nested, "hello\n")
    assert nested.read_text() == "hello\n"
    with pytest.raises(OSError):
        atomic_write_text(tmp_path / "absent" / "file.txt", "x", mkdir=False)
