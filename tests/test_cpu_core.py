"""Unit tests for the trace-driven core model."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import AccessType
from repro.cpu.core import CoreState, TraceDrivenCore
from repro.cpu.private_stack import PrivateStack, PrivateStackConfig
from repro.workloads.trace import MemoryTrace, TraceRecord


def make_core(blocks, access=AccessType.READ, start_cycle=0, line=64):
    stack = PrivateStack(0, PrivateStackConfig(l1_sets=2, l1_ways=2, l2_sets=4, l2_ways=2))
    trace = MemoryTrace([TraceRecord(b * line, access) for b in blocks])
    return TraceDrivenCore(0, stack, trace, line, start_cycle=start_cycle)


class TestLifecycle:
    def test_empty_trace_is_done_immediately(self):
        core = make_core([])
        assert core.done
        assert core.finish_time == 0

    def test_first_access_misses_and_blocks(self):
        core = make_core([1])
        miss = core.advance(1000)
        assert miss is not None
        assert miss.block == 1
        assert miss.at_cycle == 0
        assert core.blocked

    def test_advance_does_not_pass_until(self):
        core = make_core([1])
        assert core.advance(0) is None
        assert core.state is CoreState.RUNNING

    def test_resume_completes_access_and_finishes(self):
        core = make_core([1])
        core.advance(1000)
        # The engine fills the stack before resuming.
        core.stack.fill_from_llc(1, AccessType.READ)
        core.resume(response_cycle=500)
        assert core.done
        assert core.finish_time == 500

    def test_private_hits_consume_latency(self):
        core = make_core([1, 1, 1])
        core.advance(1000)
        core.stack.fill_from_llc(1, AccessType.READ)
        core.resume(100)
        assert core.advance(10_000) is None
        assert core.done
        # Two L1 hits after the resume.
        assert core.finish_time == 100 + 2 * core.stack.config.l1_hit_latency
        assert core.private_hits == 2

    def test_second_miss_blocks_again(self):
        core = make_core([1, 2])
        core.advance(1000)
        core.stack.fill_from_llc(1, AccessType.READ)
        core.resume(100)
        miss = core.advance(1000)
        assert miss.block == 2
        assert miss.at_cycle == 100

    def test_llc_request_count(self):
        core = make_core([1, 2, 1])
        core.advance(1000)
        core.stack.fill_from_llc(1, AccessType.READ)
        core.resume(100)
        core.advance(1000)
        core.stack.fill_from_llc(2, AccessType.READ)
        core.resume(200)
        core.advance(10_000)
        assert core.llc_requests == 2
        assert core.private_hits == 1


class TestStartCycle:
    def test_start_cycle_delays_first_access(self):
        core = make_core([1], start_cycle=500)
        assert core.advance(400) is None
        miss = core.advance(501)
        assert miss.at_cycle == 500

    def test_negative_start_cycle_rejected(self):
        with pytest.raises(SimulationError):
            make_core([1], start_cycle=-1)


class TestResumeValidation:
    def test_resume_while_running_rejected(self):
        core = make_core([1])
        with pytest.raises(SimulationError):
            core.resume(10)

    def test_resume_in_the_past_rejected(self):
        core = make_core([1], start_cycle=100)
        core.advance(1000)
        with pytest.raises(SimulationError):
            core.resume(50)

    def test_advance_when_done_is_noop(self):
        core = make_core([])
        assert core.advance(10_000) is None
