"""Unit tests for SystemConfig validation, the event log and reports."""

import pytest

from repro.bus.schedule import TdmSchedule
from repro.common.errors import ConfigurationError
from repro.llc.partition import PartitionSpec
from repro.sim.config import PAPER_SLOT_WIDTH, SystemConfig
from repro.sim.events import EventKind, EventLog, SimEvent

from sim_helpers import private_partitions, shared_partition, small_config


class TestSystemConfig:
    def test_default_schedule_is_one_slot(self):
        config = small_config(num_cores=3)
        schedule = config.build_schedule()
        assert schedule.is_one_slot
        assert schedule.num_cores == 3

    def test_explicit_schedule_used(self):
        schedule = TdmSchedule((0, 1, 1), 50)
        config = small_config(num_cores=2, schedule=schedule)
        assert config.build_schedule() is schedule

    def test_schedule_order_permutes(self):
        config = SystemConfig(
            num_cores=2,
            partitions=[shared_partition(2)],
            llc_sets=4,
            llc_ways=4,
            schedule_order=(1, 0),
        )
        assert config.build_schedule().slot_owners == (1, 0)

    def test_schedule_and_order_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            SystemConfig(
                num_cores=2,
                partitions=[shared_partition(2)],
                llc_sets=4,
                llc_ways=4,
                schedule=TdmSchedule((0, 1), 50),
                schedule_order=(0, 1),
            )

    def test_partition_must_cover_all_cores(self):
        with pytest.raises(ConfigurationError, match="cover"):
            SystemConfig(
                num_cores=3,
                partitions=[shared_partition(2)],
                llc_sets=4,
                llc_ways=4,
            )

    def test_hit_latency_must_fit_slot(self):
        with pytest.raises(ConfigurationError, match="fit in a slot"):
            small_config(slot_width=10)

    def test_miss_latency_must_cover_dram(self):
        with pytest.raises(ConfigurationError, match="DRAM"):
            SystemConfig(
                num_cores=2,
                partitions=[shared_partition(2)],
                llc_sets=4,
                llc_ways=4,
                llc_miss_latency=20,
                llc_hit_latency=10,
            )

    def test_schedule_core_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(
                num_cores=2,
                partitions=[shared_partition(2)],
                llc_sets=4,
                llc_ways=4,
                schedule=TdmSchedule((0, 1, 2), 50),
            )

    def test_schedule_slot_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(
                num_cores=2,
                partitions=[shared_partition(2)],
                llc_sets=4,
                llc_ways=4,
                slot_width=40,
                schedule=TdmSchedule((0, 1), 50),
            )

    def test_empty_partitions_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_cores=1, partitions=[])

    def test_paper_slot_width_constant(self):
        assert PAPER_SLOT_WIDTH == 50

    def test_describe_mentions_key_facts(self):
        text = small_config(num_cores=2, sequencer=True).describe()
        assert "2 cores" in text
        assert "1S-TDM" in text
        assert "SS" in text

    def test_period_cycles(self):
        assert small_config(num_cores=4, slot_width=50).period_cycles == 200


class TestEventLog:
    def test_append_and_query(self):
        log = EventLog()
        log.append(SimEvent(0, 0, EventKind.SLOT_IDLE, core=1))
        log.append(SimEvent(50, 1, EventKind.REQ_BROADCAST, core=0, block=4))
        assert len(log) == 2
        assert len(log.of_kind(EventKind.SLOT_IDLE)) == 1
        assert len(log.for_core(0)) == 1
        assert log.counts()[EventKind.REQ_BROADCAST] == 1

    def test_disabled_log_drops_events(self):
        log = EventLog(enabled=False)
        log.append(SimEvent(0, 0, EventKind.SLOT_IDLE))
        assert len(log) == 0

    def test_render_includes_fields(self):
        log = EventLog()
        log.append(SimEvent(50, 1, EventKind.LLC_HIT, core=2, block=0x40, set_index=3))
        text = log.render()
        assert "llc-hit" in text
        assert "core=2" in text
        assert "set=3" in text

    def test_render_limit(self):
        log = EventLog()
        for i in range(5):
            log.append(SimEvent(i, 0, EventKind.SLOT_IDLE))
        assert len(log.render(limit=2).splitlines()) == 2
