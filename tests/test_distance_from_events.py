"""Empirical Observation 1/3 tests via event-log ownership tracking."""

import pytest

from repro.analysis.distance import tracker_from_events
from repro.sim.simulator import Simulator
from repro.workloads.adversarial import conflict_storm_traces

from sim_helpers import shared_partition, small_config


def run_storm(sequencer: bool):
    config = small_config(
        num_cores=4,
        partitions=[shared_partition(4, ways=4, sequencer=sequencer)],
        llc_sets=1,
        llc_ways=4,
        max_slots=300_000,
    )
    traces = conflict_storm_traces(
        cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=8, repeats=12
    )
    sim = Simulator(config, traces)
    report = sim.run()
    return sim, report


class TestTrackerFromEvents:
    def test_block_mode_reconstructs_every_touched_line(self):
        sim, report = run_storm(sequencer=False)
        tracker = tracker_from_events(
            report.events, sim.system.schedule, observer=0, by="block"
        )
        touched = {record.block for record in report.requests}
        assert touched.issubset(set(tracker.history))

    def test_entry_mode_tracks_ways(self):
        sim, report = run_storm(sequencer=False)
        tracker = tracker_from_events(report.events, sim.system.schedule, observer=0)
        assert tracker.history
        for set_index, way in tracker.history:
            assert set_index == 0
            assert 0 <= way < 4

    def test_distances_respect_corollary_4_3(self):
        sim, report = run_storm(sequencer=False)
        tracker = tracker_from_events(report.events, sim.system.schedule, observer=0)
        for block in tracker.history:
            for value in tracker.trajectory(block):
                if value is not None:
                    assert 1 <= value <= 4

    def test_storm_exhibits_distance_increases(self):
        """Observation 3: without the sequencer, write-backs by the
        observer let entry distances increase (compared across the
        free-then-reoccupied gap, the paper's Figure 4 pattern)."""
        sim, report = run_storm(sequencer=False)
        tracker = tracker_from_events(report.events, sim.system.schedule, observer=0)
        total_increases = sum(
            tracker.increases(key, across_gaps=True) for key in tracker.history
        )
        assert total_increases > 0

    def test_storm_exhibits_distance_decreases(self):
        """Observation 1: progress shows up as distance decreases."""
        sim, report = run_storm(sequencer=False)
        tracker = tracker_from_events(report.events, sim.system.schedule, observer=0)
        total_decreases = sum(
            tracker.decreases(key, across_gaps=True) for key in tracker.history
        )
        assert total_decreases > 0

    def test_trajectory_gaps_on_eviction(self):
        sim, report = run_storm(sequencer=True)
        tracker = tracker_from_events(report.events, sim.system.schedule, observer=0)
        # Lines that were evicted have a None (unowned) sample.
        assert any(
            None in tracker.trajectory(block) for block in tracker.history
        )
