"""Catalogue tests: collect_metrics coverage and the live sampler."""

import dataclasses

from sim_helpers import small_config, write_trace_of

from repro.obs.collect import collect_metrics
from repro.sim.simulator import simulate

TRACES = {
    0: write_trace_of([0, 1, 0, 2, 1]),
    1: write_trace_of([16, 17, 16]),
}


def run_and_collect(config=None):
    config = config or small_config()
    report = simulate(config, TRACES)
    return report, collect_metrics(report, config.slot_width)


class TestCatalogue:
    def test_sim_series(self):
        report, registry = run_and_collect()
        assert registry.counter("sim.slots.total").value == report.total_slots
        assert registry.counter("sim.cycles.total").value == report.total_cycles
        assert registry.gauge("sim.makespan").value == report.makespan
        assert registry.gauge("sim.timed_out").value == 0

    def test_core_series_match_report(self):
        report, registry = run_and_collect()
        for core, core_report in report.core_reports.items():
            assert (
                registry.counter("core.requests", core=core).value
                == core_report.requests
            )
            assert (
                registry.gauge("core.observed_wcl", core=core).value
                == core_report.observed_wcl
            )
            assert registry.gauge("core.starved", core=core).value == 0

    def test_latency_histogram_conserves_requests(self):
        """Every request lands in exactly one latency bucket."""
        report, registry = run_and_collect()
        for core, core_report in report.core_reports.items():
            histogram = registry.get("core.latency", core=core)
            assert histogram.count == core_report.requests
            assert sum(histogram.buckets.values()) == core_report.requests
            assert histogram.value_max == core_report.observed_wcl

    def test_bus_slots_sum_to_total(self):
        report, registry = run_and_collect()
        total = sum(
            metric.value
            for (name, _), metric in registry
            if name == "bus.slots"
        )
        assert total == report.total_slots

    def test_llc_and_dram_series(self):
        report, registry = run_and_collect()
        llc = report.llc_stats
        assert registry.counter("llc.accesses").value == llc.accesses
        assert registry.counter("llc.hits").value == llc.hits
        assert registry.counter("llc.misses").value == llc.misses
        assert registry.gauge("llc.hit_rate").value == llc.hit_rate
        assert registry.counter("dram.reads").value == report.dram_reads
        assert registry.counter("dram.writes").value == report.dram_writes
        # Hit-served request count agrees with the request records.
        hits = sum(1 for record in report.requests if record.served_by_hit)
        collected = sum(
            metric.value
            for (name, _), metric in registry
            if name == "core.llc_hits"
        )
        assert collected == hits

    def test_sequencer_series_present_when_enabled(self):
        config = small_config(sequencer=True)
        _, registry = run_and_collect(config)
        assert registry.get("seq.registrations", partition="shared") is not None
        grants = registry.counter("seq.head_grants", partition="shared")
        assert grants.value >= 0

    def test_arbiter_contention_series(self):
        report, registry = run_and_collect()
        for core, contended in report.arbiter_contended.items():
            assert (
                registry.counter("bus.arbiter.contended", core=core).value
                == contended
            )

    def test_collect_is_deterministic(self):
        _, first = run_and_collect()
        _, second = run_and_collect()
        assert first.rows() == second.rows()


class TestSampler:
    def test_sampler_off_by_default(self):
        report, registry = run_and_collect()
        assert report.metrics is None
        assert registry.get("pwb.occupancy", core=0) is None

    def test_sampler_series_when_enabled(self):
        config = dataclasses.replace(
            small_config(sequencer=True), record_metrics=True
        )
        report = simulate(config, TRACES)
        assert report.metrics is not None
        registry = collect_metrics(report, config.slot_width)
        for core in range(config.num_cores):
            pwb = registry.get("pwb.occupancy", core=core)
            prb = registry.get("prb.occupancy", core=core)
            # One sample per slot → counts conserve the slot total.
            assert pwb.count == report.total_slots
            assert prb.count == report.total_slots
        seq = registry.get("seq.active_sets", partition="shared")
        assert seq.count == report.total_slots

    def test_sampling_does_not_change_results(self):
        """Observation is passive: same workload, same report numbers."""
        baseline = simulate(small_config(), TRACES)
        sampled = simulate(
            dataclasses.replace(small_config(), record_metrics=True), TRACES
        )
        assert sampled.makespan == baseline.makespan
        assert sampled.observed_wcl() == baseline.observed_wcl()
        assert {
            core: report.requests
            for core, report in sampled.core_reports.items()
        } == {
            core: report.requests
            for core, report in baseline.core_reports.items()
        }
