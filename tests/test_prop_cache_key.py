"""Property tests of the result-cache fingerprint canonicalization.

The cache key must be a *canonical* function of the simulation's
semantic inputs and nothing else:

* invariant to representation noise — mapping iteration order, how a
  trace's record list was chunked together, the trace's display name,
  explicitly-passed default field values;
* injective over semantics — any two configs, trace sequences or engine
  selections that could produce different reports must produce
  different keys (no silent collisions, even on default-valued fields).

A collision would silently replay the wrong run's report; an
instability would silently miss, costing only time — both are stated
here as Hypothesis properties over generated configs and traces.
"""

import dataclasses
import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from sim_helpers import shared_partition, small_config

from repro.common.types import AccessType
from repro.sim.cache import (
    config_key_document,
    result_cache_key,
    trace_cache_fingerprint,
)
from repro.workloads.trace import MemoryTrace, TraceRecord

LINE = 64

records_st = st.lists(
    st.builds(
        TraceRecord,
        address=st.integers(0, 255).map(lambda block: block * LINE),
        access=st.sampled_from([AccessType.READ, AccessType.WRITE]),
        compute_cycles=st.integers(0, 400),
    ),
    min_size=0,
    max_size=12,
)


def _config(num_cores: int = 2, **overrides):
    return dataclasses.replace(small_config(num_cores=num_cores), **overrides)


@st.composite
def per_core_records(draw, num_cores=2):
    return {core: draw(records_st) for core in range(num_cores)}


# ----------------------------------------------------------------------
# Invariance: representation noise never changes the key
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(per_core=per_core_records())
def test_key_invariant_to_mapping_insertion_order(per_core):
    config = _config()
    forward = {
        core: MemoryTrace(records, name=f"fwd{core}")
        for core, records in per_core.items()
    }
    backward = {
        core: MemoryTrace(per_core[core], name=f"bwd{core}")
        for core in sorted(per_core, reverse=True)
    }
    assert list(forward) != list(backward) or len(per_core) < 2
    assert result_cache_key(config, forward) == result_cache_key(
        config, backward
    )


@settings(max_examples=40, deadline=None)
@given(
    per_core=per_core_records(),
    starts=st.fixed_dictionaries({0: st.integers(0, 500), 1: st.integers(0, 500)}),
)
def test_key_invariant_to_start_cycle_mapping_order(per_core, starts):
    config = _config()
    traces = {c: MemoryTrace(r) for c, r in per_core.items()}
    reversed_starts = {c: starts[c] for c in sorted(starts, reverse=True)}
    assert result_cache_key(config, traces, starts) == result_cache_key(
        config, traces, reversed_starts
    )


@settings(max_examples=40, deadline=None)
@given(records=records_st, data=st.data())
def test_trace_fingerprint_invariant_to_chunking_and_name(records, data):
    """However the record sequence was assembled, one fingerprint."""
    cut_a = data.draw(st.integers(0, len(records)), label="cut_a")
    cut_b = data.draw(st.integers(cut_a, len(records)), label="cut_b")
    whole = MemoryTrace(records, name="whole")
    chunked = MemoryTrace(
        itertools.chain(
            records[:cut_a], records[cut_a:cut_b], records[cut_b:]
        ),
        name="chunked-and-renamed",
    )
    assert trace_cache_fingerprint(whole) == trace_cache_fingerprint(chunked)


@settings(max_examples=25, deadline=None)
@given(per_core=per_core_records())
def test_key_invariant_to_explicit_default_field_values(per_core):
    """Re-stating a field's default never changes the key."""
    config = _config()
    traces = {c: MemoryTrace(r) for c, r in per_core.items()}
    restated = dataclasses.replace(
        config,
        seed=config.seed,
        engine=config.engine,
        drain_writebacks=config.drain_writebacks,
        llc_policy=config.llc_policy,
    )
    assert result_cache_key(config, traces) == result_cache_key(
        restated, traces
    )
    assert config_key_document(config) == config_key_document(restated)


# ----------------------------------------------------------------------
# Injectivity: semantic differences always change the key
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    records_a=records_st,
    records_b=records_st,
)
def test_distinct_record_sequences_get_distinct_fingerprints(
    records_a, records_b
):
    """Length-framed hashing is injective over record *sequences*.

    This subsumes the re-chunking attack: two different sequences whose
    concatenated text bytes happen to agree still frame differently.
    """
    same = records_a == records_b
    equal = trace_cache_fingerprint(
        MemoryTrace(records_a)
    ) == trace_cache_fingerprint(MemoryTrace(records_b))
    assert equal == same


# One mutation per scalar config field the report can depend on — the
# default-valued ones included, which is exactly where a lazy "only
# hash the non-default fields" scheme would silently collide.
FIELD_MUTATIONS = [
    ("seed", lambda v: v + 1),
    ("slot_width", lambda v: v + 1),
    ("line_size", lambda v: v * 2),
    ("llc_sets", lambda v: v * 2),
    ("llc_ways", lambda v: v + 1),
    ("llc_policy", lambda v: "fifo" if v != "fifo" else "lru"),
    ("llc_hit_latency", lambda v: v + 1),
    ("llc_miss_latency", lambda v: v + 1),
    ("max_slots", lambda v: v + 1),
    ("record_events", lambda v: not v),
    ("drain_writebacks", lambda v: not v),
    ("checked", lambda v: not v),
    ("record_metrics", lambda v: not v),
    ("engine", lambda v: "reference" if v == "fast" else "fast"),
]


@settings(max_examples=60, deadline=None)
@given(
    per_core=per_core_records(),
    mutation=st.sampled_from(FIELD_MUTATIONS),
)
def test_any_mutated_config_field_changes_the_key(per_core, mutation):
    field, mutate = mutation
    config = _config()
    traces = {c: MemoryTrace(r) for c, r in per_core.items()}
    mutated = dataclasses.replace(config, **{field: mutate(getattr(config, field))})
    assert result_cache_key(config, traces) != result_cache_key(
        mutated, traces
    ), f"mutating {field} must change the cache key"


@settings(max_examples=25, deadline=None)
@given(per_core=per_core_records(), extra_ways=st.integers(1, 4))
def test_partition_geometry_changes_the_key(per_core, extra_ways):
    config = _config()
    traces = {c: MemoryTrace(r) for c, r in per_core.items()}
    wider = dataclasses.replace(
        config,
        partitions=[shared_partition(2, ways=4 + extra_ways)],
        llc_ways=4 + extra_ways,
    )
    assert result_cache_key(config, traces) != result_cache_key(wider, traces)


@settings(max_examples=40, deadline=None)
@given(
    per_core=per_core_records(),
    starts=st.dictionaries(
        st.sampled_from([0, 1]), st.integers(0, 500), max_size=2
    ),
)
def test_start_cycles_distinguish_keys_exactly_when_semantically_distinct(
    per_core, starts
):
    config = _config()
    traces = {c: MemoryTrace(r) for c, r in per_core.items()}
    plain = result_cache_key(config, traces)
    offset = result_cache_key(config, traces, starts)
    # All-zero (or empty) offsets mean "no offsets": same semantics,
    # same key.  Any non-zero offset is a different run.
    if any(starts.values()):
        assert offset != plain
    else:
        assert offset == plain
