"""Tests for the one-shot reproduction runner and the histogram view."""

import json

import pytest

from repro.experiments.runner import run_all
from repro.sim.export import render_histogram


class TestRunAll:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        progress = []
        run = run_all(
            out_dir=out,
            num_requests=120,
            tightness_repeats=10,
            progress=progress.append,
        )
        return out, run, progress

    def test_all_artifacts_produced(self, result):
        out, run, _progress = result
        names = {artifact.name for artifact in run.artifacts}
        assert "section-5.1-constants" in names
        assert "figure-7" in names
        for sub in ("8a", "8b", "8c", "8d"):
            assert f"figure-{sub}" in names
        assert "section-4.1-unbounded" in names
        assert "bound-tightness" in names
        assert "partial-sharing-isolation" in names

    def test_all_checks_pass(self, result):
        _out, run, _progress = result
        failing = {
            artifact.name: artifact.checks
            for artifact in run.artifacts
            if not artifact.passed
        }
        assert not failing, failing

    def test_files_written(self, result):
        out, run, _progress = result
        for artifact in run.artifacts:
            assert (out / f"{artifact.name}.txt").exists()
        assert (out / "summary.json").exists()
        assert (out / "SUMMARY.txt").exists()

    def test_summary_json_structure(self, result):
        out, run, _progress = result
        summary = json.loads((out / "summary.json").read_text())
        assert set(summary) == {artifact.name for artifact in run.artifacts}
        for checks in summary.values():
            assert all(isinstance(value, bool) for value in checks.values())

    def test_progress_reported(self, result):
        _out, run, progress = result
        assert len(progress) == len(run.artifacts)

    def test_summary_text(self, result):
        _out, run, _progress = result
        text = run.summary()
        assert "figure-7" in text
        assert run.all_passed == ("FAIL" not in text)


class TestRenderHistogram:
    def test_basic_bars(self):
        text = render_histogram([40, 60, 70, 220], 100, max_bar=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("#" * 10)

    def test_counts_shown(self):
        text = render_histogram([10, 20, 150], 100)
        assert "    2 " in text
        assert "    1 " in text

    def test_empty_sample(self):
        assert render_histogram([], 50) == "(no samples)"

    def test_every_bucket_has_a_bar(self):
        text = render_histogram(list(range(0, 1000, 7)), 100)
        for line in text.splitlines():
            assert line.rstrip().endswith("#")
