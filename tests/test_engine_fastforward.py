"""The idle-slot fast-forward engine: equivalence, gating, regression.

The fast engine's contract is *bit-identity*: every exported number —
the :func:`repro.sim.export.report_to_dict` JSON, ``slot_usage``,
``total_slots`` — must equal the reference per-slot loop's, on every
input.  These tests pin that contract on boundary-biased property
cases, sparse think-heavy workloads (where the fast path actually
jumps), timeout and drain-writeback edges, and pin the reference-
forcing rules: a pre-slot fault hook lands on its exact target slot
even when that slot sits mid idle-gap under the fast engine.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro.cpu.private_stack import PrivateStack, PrivateStackConfig
from repro.robustness.faults import FaultKind, FaultPlan, install_fault_plan
from repro.robustness.fuzz import (
    config_from_dict,
    generate_case,
    traces_from_case,
)
from repro.robustness.oracle import ORACLE_CHECKS, check_run
from repro.sim.engine import SlotEngine
from repro.sim.export import report_to_dict
from repro.sim.simulator import Simulator, simulate
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)
from repro.workloads.trace import MemoryTrace, TraceRecord
from sim_helpers import small_config, write_trace_of

from repro.common.types import AccessType


def _run_both(config, traces, count_jumps: bool = False):
    """Run ``traces`` under both engines; return the two reports.

    With ``count_jumps=True`` also returns how many fast-forward jumps
    the fast run committed, so a test can assert the fast path actually
    engaged (an equivalence proof over a never-taken path proves
    nothing).
    """
    fast_config = dataclasses.replace(config, engine="fast")
    reference_config = dataclasses.replace(config, engine="reference")
    sim = Simulator(fast_config, traces)
    jumps = 0
    if count_jumps:
        original = sim.engine._try_fast_forward

        def counting():
            nonlocal jumps
            took = original()
            if took:
                jumps += 1
            return took

        sim.engine._try_fast_forward = counting
    fast = sim.run()
    reference = simulate(reference_config, traces)
    if count_jumps:
        return fast, reference, jumps
    return fast, reference


def _assert_identical(fast, reference):
    """The full exported surface must match byte-for-byte."""
    fast_bytes = json.dumps(report_to_dict(fast), sort_keys=True)
    reference_bytes = json.dumps(report_to_dict(reference), sort_keys=True)
    assert fast_bytes == reference_bytes
    assert fast.slot_usage == reference.slot_usage
    assert fast.total_slots == reference.total_slots
    assert fast.timed_out == reference.timed_out


class TestPropertyEquivalence:
    def test_fast_equals_reference_on_fuzz_cases(self):
        """Boundary-biased random scenarios: fast ≡ reference, always."""
        rng = random.Random(1234)
        for index in range(25):
            case = generate_case(rng, index)
            config = dataclasses.replace(
                config_from_dict(case.config), record_events=False
            )
            traces = traces_from_case(case)
            fast, reference = _run_both(config, traces)
            _assert_identical(fast, reference)

    def test_fast_equals_reference_on_boundary_think_gaps(self):
        """Think gaps landing exactly on/around slot boundaries.

        The eligibility rule is ``enqueued_at <= slot_start``; gaps of
        SW-1, SW and SW+1 cycles pin the candidate-slot rounding on
        both sides of each boundary.
        """
        config = dataclasses.replace(
            small_config(num_cores=2, record_events=False), slot_width=50
        )
        for gap in (49, 50, 51, 99, 100, 101, 149):
            records = []
            for i in range(12):
                records.append(
                    TraceRecord(
                        address=(i * 7) * config.line_size,
                        access=AccessType.WRITE,
                        compute_cycles=gap if i % 3 == 0 else 0,
                    )
                )
            traces = {
                0: MemoryTrace(records, name="gappy"),
                1: write_trace_of(range(100, 108)),
            }
            fast, reference = _run_both(config, traces)
            _assert_identical(fast, reference)


class TestSparseWorkloads:
    def test_fast_forward_engages_and_matches_on_sparse_traces(self):
        """Long think gaps: the fast path must jump, and bit-match."""
        config = small_config(num_cores=2, record_events=False)
        workload = SyntheticWorkloadConfig(
            num_requests=30,
            address_range_size=2048,
            seed=7,
            max_think_cycles=5000,
        )
        traces = generate_disjoint_workload(workload, [0, 1])
        fast, reference, jumps = _run_both(config, traces, count_jumps=True)
        _assert_identical(fast, reference)
        assert jumps > 0, "sparse workload never took the fast path"

    def test_timeout_mid_idle_gap(self):
        """A slot cap landing inside an idle stretch reports identically."""
        config = dataclasses.replace(
            small_config(num_cores=2, record_events=False), max_slots=40
        )
        traces = {
            # One access, then a think gap far past the 40-slot cap.
            0: MemoryTrace(
                [
                    TraceRecord(0, AccessType.WRITE),
                    TraceRecord(
                        64, AccessType.WRITE, compute_cycles=1_000_000
                    ),
                ],
                name="sleeper",
            ),
            1: write_trace_of([100, 101]),
        }
        fast, reference = _run_both(config, traces)
        _assert_identical(fast, reference)
        assert fast.timed_out
        assert fast.total_slots == 40

    @pytest.mark.parametrize("drain", [True, False])
    def test_drain_writebacks_both_ways(self, drain):
        """Dirty write-backs queued at the end: drained or abandoned."""
        config = dataclasses.replace(
            small_config(num_cores=2, llc_sets=1, llc_ways=2, record_events=False),
            drain_writebacks=drain,
        )
        # Writes over more blocks than the one-set LLC region holds:
        # evictions and back-invalidation write-backs are guaranteed.
        traces = {
            0: write_trace_of([0, 1, 2, 3, 0, 1, 2, 3]),
            1: write_trace_of([4, 5, 6, 7, 4, 5, 6, 7]),
        }
        fast, reference = _run_both(config, traces)
        _assert_identical(fast, reference)


class TestReferenceForcing:
    def test_pre_slot_fault_fires_on_exact_mid_gap_slot(self):
        """Regression: a fault targeted mid idle-gap must not be skipped.

        Hooks force the reference path; with the fast engine configured
        and a sparse workload whose idle stretch covers the target slot,
        the injector must still fire at exactly that slot — a fast
        engine that jumped the gap would deliver it late (or never).
        """
        config = small_config(num_cores=2, record_events=True)
        traces = {
            0: MemoryTrace(
                [
                    TraceRecord(0, AccessType.WRITE),
                    # ~30 slots of think time: slots ~2..30 are idle.
                    TraceRecord(64, AccessType.WRITE, compute_cycles=1500),
                ],
                name="gap",
            ),
            1: write_trace_of([100]),
        }
        target_slot = 15
        sim = Simulator(
            dataclasses.replace(config, engine="fast"), traces
        )
        seen_slots = []
        sim.engine.add_pre_slot_hook(
            lambda engine, slot: seen_slots.append(slot)
        )
        plan = FaultPlan.single(kind=FaultKind.DROPPED_SLOT, slot=target_slot)
        injector = install_fault_plan(sim.engine, plan)
        sim.run()
        assert injector.unfired() == []
        assert injector.injected[0].spec.slot == target_slot
        # The hook saw every slot up to the fault's target — no slot in
        # the idle gap was jumped over.
        assert seen_slots[: target_slot + 1] == list(range(target_slot + 1))

    def test_event_recording_forces_reference_path(self):
        """With events on, the fast engine must never jump (the golden
        traces depend on this)."""
        config = small_config(num_cores=2, record_events=True)
        workload = SyntheticWorkloadConfig(
            num_requests=10,
            address_range_size=1024,
            seed=3,
            max_think_cycles=5000,
        )
        traces = generate_disjoint_workload(workload, [0, 1])
        fast, reference, jumps = _run_both(config, traces, count_jumps=True)
        assert jumps == 0
        # Event streams byte-identical, not just aggregate numbers.
        fast_events = [repr(e) for e in fast.events.all()]
        reference_events = [repr(e) for e in reference.events.all()]
        assert fast_events == reference_events

    def test_checked_mode_counter_equivalence(self):
        """``checked=True`` asserts the incremental completion counters
        against the reference scan at every slot; a full run is the
        counter test."""
        config = dataclasses.replace(
            small_config(num_cores=2, llc_sets=1, llc_ways=2, record_events=False),
            checked=True,
        )
        traces = {
            0: write_trace_of([0, 1, 2, 3, 0, 1, 2, 3]),
            1: write_trace_of([4, 5, 6, 7]),
        }
        report = simulate(config, traces)
        assert not report.timed_out


class TestPredictionClones:
    def test_clone_is_independent_and_identical(self):
        stack = PrivateStack(0, PrivateStackConfig())
        for block in range(40):
            stack.access(block, AccessType.WRITE)
            stack.fill_from_llc(block, AccessType.WRITE)
        dup = stack.clone()
        assert sorted(dup.resident_blocks()) == sorted(stack.resident_blocks())
        assert dup.version == stack.version
        # Mutating the clone must not leak into the live stack.
        dup.fill_from_llc(1000, AccessType.WRITE)
        assert not stack.contains(1000)
        assert stack.version != dup.version

    def test_prediction_clone_answers_like_the_live_stack(self):
        stack = PrivateStack(0, PrivateStackConfig())
        for block in range(20):
            stack.access(block, AccessType.WRITE)
            stack.fill_from_llc(block, AccessType.WRITE)
        prediction = stack.clone_for_prediction()
        for block in range(25):
            live_hit = stack.contains(block)
            result = prediction.access(block, AccessType.WRITE)
            assert (result.hit_level is not None) == live_hit

    def test_prediction_replay_restores_core_state(self):
        """predict_next_bus_event leaves no observable footprint."""
        from repro.cpu.core import TraceDrivenCore

        trace = MemoryTrace(
            [
                TraceRecord(block * 64, AccessType.WRITE, compute_cycles=30)
                for block in range(10)
            ],
            name="probe",
        )
        core = TraceDrivenCore(0, PrivateStack(0), trace, line_size=64)
        before = (
            core.time,
            core.position,
            core.state,
            core.private_hits,
            core.llc_requests,
            core.stack.version,
        )
        first = core.predict_next_bus_event()
        assert first.miss_at is not None
        after = (
            core.time,
            core.position,
            core.state,
            core.private_hits,
            core.llc_requests,
            core.stack.version,
        )
        assert before == after
        # Cached while the stack version is unchanged.
        assert core.predict_next_bus_event() is first


class TestOracleDifferential:
    def test_engine_differential_is_registered(self):
        assert "engine-differential" in ORACLE_CHECKS
        assert len(ORACLE_CHECKS) == 10

    def test_clean_run_passes_with_traces(self):
        config = small_config(num_cores=2, record_events=True)
        traces = {
            0: write_trace_of([0, 1, 2, 3]),
            1: write_trace_of([10, 11, 12]),
        }
        report = simulate(config, traces)
        oracle = check_run(report, config, traces=traces)
        assert oracle.passed, oracle.summary()

    def test_differential_flags_divergent_rerun(self):
        """Feeding the oracle different traces than the run used must
        trip the differential (the re-run's report cannot match)."""
        config = small_config(num_cores=2, record_events=True)
        traces = {
            0: write_trace_of([0, 1, 2, 3]),
            1: write_trace_of([10, 11, 12]),
        }
        report = simulate(config, traces)
        tampered = dict(traces)
        tampered[1] = write_trace_of([10, 11, 12, 13, 14, 15])
        oracle = check_run(report, config, traces=tampered)
        assert "engine-differential" in oracle.checks_failed()

    def test_no_traces_skips_differential(self):
        config = small_config(num_cores=2, record_events=True)
        traces = {0: write_trace_of([0, 1]), 1: write_trace_of([10])}
        report = simulate(config, traces)
        oracle = check_run(report, config)
        assert oracle.passed
        assert "engine-differential" not in oracle.checks_failed()


class TestStaticGating:
    def test_random_policies_disable_fast_path(self):
        config = dataclasses.replace(
            small_config(num_cores=2, record_events=False, llc_policy="random"),
            engine="fast",
        )
        traces = {0: write_trace_of([0, 1]), 1: write_trace_of([10])}
        sim = Simulator(config, traces)
        assert not sim.engine._fast_ok
        random_stack = dataclasses.replace(
            small_config(num_cores=2, record_events=False),
            engine="fast",
            stack=PrivateStackConfig(policy="random"),
        )
        sim = Simulator(random_stack, traces)
        assert not sim.engine._fast_ok

    def test_reference_engine_disables_fast_path(self):
        config = dataclasses.replace(
            small_config(num_cores=2, record_events=False),
            engine="reference",
        )
        traces = {0: write_trace_of([0, 1]), 1: write_trace_of([10])}
        assert not Simulator(config, traces).engine._fast_ok

    def test_simulate_engine_override(self):
        config = small_config(num_cores=2, record_events=False)
        traces = {0: write_trace_of([0, 1]), 1: write_trace_of([10])}
        assert Simulator(config, traces, engine="fast").config.engine == "fast"
        assert (
            Simulator(config, traces, engine="reference").config.engine
            == "reference"
        )
