"""The golden-trace scenarios: pinned runs of the paper's configurations.

Each scenario is a fully deterministic simulation — paper configuration,
synthetic workload, fixed seed — rendered to its two canonical byte
forms: the JSONL event trace and the JSONL metrics export.  The
committed fixtures under ``tests/golden/`` pin those bytes; the
regression test re-runs every scenario and compares byte-for-byte, so
any change to simulator ordering, event encoding, metric catalogue or
exporter formatting shows up as a fixture diff instead of silently
shifting downstream results.

Regenerate fixtures after an *intentional* change with::

    PYTHONPATH=src:tests python tests/golden/regen.py
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

from repro.experiments.configs import build_system_for_notation
from repro.obs.collect import collect_metrics
from repro.obs.exporters import metrics_to_jsonl
from repro.obs.tracing import trace_to_jsonl_bytes
from repro.sim.simulator import simulate
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

#: Where the committed fixtures live.
GOLDEN_DIR = Path(__file__).parent / "golden"

#: The paper's evaluation seed, reused for the golden workloads.
GOLDEN_SEED = 2022

#: Scenario name → (notation, cores, address_range_size, num_requests).
#: One shared-sequencer configuration (the Figure 7 centrepiece), one
#: non-sequencer sharing and one fully private carving (the Figure 8
#: extremes), so the fixtures cover every event kind the engine emits.
SCENARIOS: Dict[str, Tuple[str, int, int, int]] = {
    "fig7-ss": ("SS(1,16,4)", 4, 2048, 30),
    "fig8-nss": ("NSS(1,16,2)", 2, 1024, 30),
    "fig8-private": ("P(1,16)", 4, 2048, 30),
}


def run_scenario(name: str) -> Tuple[bytes, bytes]:
    """One scenario's canonical ``(trace_bytes, metrics_bytes)``."""
    notation, cores, range_size, num_requests = SCENARIOS[name]
    config = build_system_for_notation(
        notation, num_cores=cores, record_events=True
    )
    workload = SyntheticWorkloadConfig(
        num_requests=num_requests,
        address_range_size=range_size,
        seed=GOLDEN_SEED,
    )
    traces = generate_disjoint_workload(workload, range(cores))
    report = simulate(config, traces)
    trace_bytes = trace_to_jsonl_bytes(report.events.all())
    metrics = collect_metrics(report, config.slot_width)
    return trace_bytes, metrics_to_jsonl(metrics).encode()


def fixture_paths(name: str, root: Path = GOLDEN_DIR) -> Tuple[Path, Path]:
    """One scenario's fixture files under ``root``.

    The default root is the committed fixture directory; the
    golden-drift guard (``tests/test_golden_drift.py`` and the CI
    ``golden-drift`` step) regenerates into a scratch root and
    byte-compares the two.
    """
    return (
        root / f"{name}.trace.jsonl",
        root / f"{name}.metrics.jsonl",
    )
