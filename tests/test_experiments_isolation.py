"""Tests for the partial-sharing isolation experiment."""

import pytest

from repro.experiments.isolation import (
    LOAD_LEVELS,
    build_mixed_config,
    run_isolation,
)


@pytest.fixture(scope="module")
def result():
    return run_isolation(seed=7)


class TestMixedConfig:
    def test_layout(self):
        config = build_mixed_config()
        pmap = config.build_partition_map()
        shared = pmap.partition_of(0)
        assert shared is pmap.partition_of(1)
        assert shared.sequencer
        assert pmap.partition_of(2) is not pmap.partition_of(3)
        assert not pmap.partition_of(2).is_shared

    def test_partitions_disjoint_sets(self):
        config = build_mixed_config()
        all_sets = [
            s for p in config.build_partition_map().partitions for s in p.sets
        ]
        assert len(all_sets) == len(set(all_sets))


class TestIsolation:
    def test_private_cores_isolated(self, result):
        assert result.private_cores_isolated()

    def test_bounds_hold_at_every_load(self, result):
        assert result.bounds_hold()

    def test_all_load_levels_measured(self, result):
        assert set(result.observed_wcl) == set(LOAD_LEVELS)

    def test_private_latency_sets_nonempty(self, result):
        for level in LOAD_LEVELS:
            for core in (2, 3):
                assert result.private_latencies[level][core]

    def test_sharers_silent_when_idle(self, result):
        assert 0 not in result.observed_wcl["idle"]
        assert 1 not in result.observed_wcl["idle"]

    def test_sharers_active_under_storm(self, result):
        assert 0 in result.observed_wcl["storm"]
        assert 1 in result.observed_wcl["storm"]

    def test_render_lists_levels(self, result):
        text = result.render()
        for level in LOAD_LEVELS:
            assert level in text

    def test_shared_bound_is_theorem_48_for_two_sharers(self, result):
        # (2(n-1)n + 1) * N * SW with n=2, N=4, SW=50.
        assert result.shared_bound == 5 * 4 * 50

    def test_private_bound_is_2n_plus_1(self, result):
        assert result.private_bound == 450
