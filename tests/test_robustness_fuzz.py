"""Fuzz campaigns: generator determinism, resume, chaos accounting, CLI."""

import json

import pytest

from repro.cli import main
from repro.common.errors import FuzzError
from repro.obs.metrics import MetricsRegistry
from repro.robustness import fuzz as fuzz_mod
from repro.robustness.fuzz import (
    FuzzCase,
    generate_cases,
    run_fuzz,
    run_fuzz_case,
)
from repro.sim.parallel import parallel_available


class TestGenerator:
    def test_same_seed_same_cases(self):
        first = [case.to_dict() for case in generate_cases(25, 7)]
        second = [case.to_dict() for case in generate_cases(25, 7)]
        assert first == second

    def test_different_seed_differs(self):
        first = [case.to_dict() for case in generate_cases(25, 7)]
        second = [case.to_dict() for case in generate_cases(25, 8)]
        assert first != second

    def test_boundary_regions_are_covered(self):
        cases = generate_cases(80, 3)
        assert any(
            len(part["sets"]) == 1
            for case in cases
            for part in case.config["partitions"]
        )
        assert any(case.config["num_cores"] == 1 for case in cases)
        assert any(case.config["schedule_order"] for case in cases)
        assert any(
            part["sequencer"]
            for case in cases
            for part in case.config["partitions"]
        )

    def test_chaos_rate_zero_injects_nothing(self):
        assert all(case.fault is None for case in generate_cases(30, 0))

    def test_case_round_trips_through_json(self):
        case = generate_cases(3, 5)[2]
        assert FuzzCase.from_dict(json.loads(json.dumps(case.to_dict()))) == case

    def test_unknown_case_version_rejected(self):
        data = generate_cases(1, 5)[0].to_dict()
        data["case_version"] = 99
        with pytest.raises(FuzzError, match="version"):
            FuzzCase.from_dict(data)

    def test_budget_must_be_positive(self):
        with pytest.raises(FuzzError, match="budget"):
            generate_cases(0, 1)


class TestCampaign:
    def test_clean_engine_finds_nothing(self, tmp_path):
        out = tmp_path / "out"
        report = run_fuzz(budget=25, seed=0, out_dir=out)
        assert report.ok
        assert len(report.cases) == 25
        assert report.failures == []
        data = json.loads((out / "fuzz-report.json").read_text())
        assert data["summary"]["ok"]
        assert data["summary"]["cases"] == 25

    @pytest.mark.skipif(
        not parallel_available(), reason="fork pool unavailable"
    )
    def test_jobs_are_bit_identical(self, tmp_path):
        run_fuzz(budget=16, seed=4, out_dir=tmp_path / "j1", jobs=1)
        run_fuzz(budget=16, seed=4, out_dir=tmp_path / "j3", jobs=3)
        assert (tmp_path / "j1" / "fuzz-report.json").read_bytes() == (
            tmp_path / "j3" / "fuzz-report.json"
        ).read_bytes()

    def test_interrupted_campaign_resumes_identically(
        self, tmp_path, monkeypatch
    ):
        ref = run_fuzz(budget=10, seed=2, out_dir=tmp_path / "ref")
        real = fuzz_mod.run_fuzz_case
        calls = {"n": 0}

        def interrupted(case):
            calls["n"] += 1
            if calls["n"] == 6:
                raise KeyboardInterrupt
            return real(case)

        monkeypatch.setattr(fuzz_mod, "run_fuzz_case", interrupted)
        out = tmp_path / "out"
        with pytest.raises(KeyboardInterrupt):
            run_fuzz(budget=10, seed=2, out_dir=out)
        monkeypatch.setattr(fuzz_mod, "run_fuzz_case", real)
        resumed = run_fuzz(budget=10, seed=2, out_dir=out)
        assert resumed.to_dict() == ref.to_dict()
        assert (out / "fuzz-report.json").read_bytes() == (
            tmp_path / "ref" / "fuzz-report.json"
        ).read_bytes()

    def test_chaos_faults_are_all_detected(self):
        report = run_fuzz(budget=40, seed=1, fault_rate=0.6)
        assert report.chaos_detected > 0
        assert report.chaos_missed == []
        assert report.ok

    def test_quarantined_case_counts_as_failure(self, tmp_path, monkeypatch):
        real = fuzz_mod.run_fuzz_case

        def exploding(case):
            if case.case_id == "case-00003":
                raise RuntimeError("harness exploded")
            return real(case)

        monkeypatch.setattr(fuzz_mod, "run_fuzz_case", exploding)
        report = run_fuzz(
            budget=6, seed=0, out_dir=tmp_path / "o", shrink_failures=False
        )
        assert not report.ok
        assert report.cases[3]["signature"] == "quarantined:RuntimeError"
        assert [case["case_id"] for case in report.failures] == ["case-00003"]

    def test_metrics_are_recorded(self):
        registry = MetricsRegistry()
        report = run_fuzz(budget=8, seed=0, registry=registry)
        passed = registry.counter("fuzz_cases_total", status="passed")
        assert passed.value == len(report.cases) == 8

    def test_failing_case_is_shrunk_to_an_artifact(self, tmp_path, monkeypatch):
        import dataclasses

        import repro.robustness.shrink as shrink_mod

        real = fuzz_mod.run_fuzz_case

        def buggy(case):
            # Simulate a deterministic engine bug that any case where
            # core 0 issues at least one request trips over.
            result = real(case)
            if case.traces.get(0):
                return dataclasses.replace(
                    result, passed=False, signature="oracle:slot-accounting"
                )
            return result

        monkeypatch.setattr(fuzz_mod, "run_fuzz_case", buggy)
        monkeypatch.setattr(shrink_mod, "run_fuzz_case", buggy)
        out = tmp_path / "out"
        report = run_fuzz(budget=4, seed=0, out_dir=out)
        assert not report.ok
        assert report.artifacts
        for name in report.artifacts:
            artifact = json.loads((out / name).read_text())
            assert artifact["failure"]["signature"] == "oracle:slot-accounting"
            assert artifact["shrink"]["requests"] <= 8


class TestCli:
    def test_fuzz_cli_green_campaign(self, tmp_path, capsys):
        out = tmp_path / "o"
        status = main(
            ["fuzz", "--budget", "10", "--seed", "0", "--out", str(out)]
        )
        assert status == 0
        printed = capsys.readouterr().out
        assert "0 failure(s)" in printed
        assert (out / "fuzz-report.json").exists()
        assert (out / "fuzz-manifest.json").exists()

    def test_fuzz_cli_chaos_campaign(self, capsys):
        assert main(
            ["fuzz", "--budget", "20", "--seed", "1", "--chaos", "0.5"]
        ) == 0
        assert "chaos:" in capsys.readouterr().out

    def test_fuzz_cli_exports_metrics(self, tmp_path):
        metrics = tmp_path / "fuzz.csv"
        status = main(
            ["fuzz", "--budget", "5", "--seed", "0",
             "--metrics", str(metrics)]
        )
        assert status == 0
        assert "fuzz_cases_total" in metrics.read_text()

    def test_repro_cli_rejects_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["repro", str(missing)]) == 2
        assert "unreadable" in capsys.readouterr().err
