"""Larger-system integration tests and assorted coverage."""

import pytest

from repro.analysis.verification import assert_bounds
from repro.bus.schedule import TdmSchedule
from repro.common.errors import ScheduleError
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulator, simulate
from repro.workloads.adversarial import conflict_storm_traces
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)


class TestScheduleParse:
    def test_basic(self):
        schedule = TdmSchedule.parse("0,1,2,3", 50)
        assert schedule.slot_owners == (0, 1, 2, 3)
        assert schedule.is_one_slot

    def test_multi_slot(self):
        schedule = TdmSchedule.parse("0, 1, 1", 10)
        assert schedule.slots_of(1) == (1, 2)

    def test_whitespace_and_trailing_comma(self):
        assert TdmSchedule.parse(" 0 ,1, ", 10).slot_owners == (0, 1)

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            TdmSchedule.parse("", 10)

    def test_garbage_rejected(self):
        with pytest.raises(ScheduleError):
            TdmSchedule.parse("0,x", 10)


class TestSixteenCoreCluster:
    """A Kalray-MPPA3-like cluster: 16 cores on one 1S-TDM bus."""

    @pytest.fixture(scope="class")
    def cluster(self):
        # 8 cores share a sequencer-ordered half of the LLC; 8 cores
        # get private slices of the other half.
        partitions = [
            PartitionSpec(
                "shared", list(range(0, 16)), (0, 16),
                tuple(range(8)), sequencer=True,
            )
        ]
        for core in range(8, 16):
            partitions.append(
                PartitionSpec(
                    f"core{core}", [16 + (core - 8) * 2, 17 + (core - 8) * 2],
                    (0, 16), (core,),
                )
            )
        config = SystemConfig(
            num_cores=16,
            partitions=partitions,
            llc_sets=32,
            llc_ways=16,
            max_slots=1_000_000,
        )
        workload = SyntheticWorkloadConfig(
            num_requests=120, address_range_size=2048, seed=4
        )
        traces = generate_disjoint_workload(workload, list(range(16)))
        sim = Simulator(config, traces)
        return config, sim, sim.run()

    def test_everyone_completes(self, cluster):
        _config, _sim, report = cluster
        assert not report.timed_out
        for core in range(16):
            assert report.core_reports[core].completed

    def test_bounds_hold_cluster_wide(self, cluster):
        config, _sim, report = cluster
        assert_bounds(report, config)

    def test_inclusivity_at_scale(self, cluster):
        _config, sim, _report = cluster
        sim.system.check_inclusivity()

    def test_period_is_sixteen_slots(self, cluster):
        config, _sim, _report = cluster
        assert config.period_cycles == 16 * config.slot_width


class TestVerifierOnStorms:
    @pytest.mark.parametrize("notation", ["SS(1,16,4)", "NSS(1,16,4)", "P(1,16)"])
    def test_fig7_configs_comply(self, notation):
        from repro.experiments.configs import build_system_for_notation

        config = build_system_for_notation(notation, num_cores=4)
        traces = conflict_storm_traces(
            cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=18, repeats=10
        )
        report = simulate(config, traces)
        assert_bounds(report, config)


class TestLlcExtraStats:
    def test_silent_back_invalidations_counted(self):
        from repro.llc.llc import PartitionedLlc
        from repro.llc.partition import PartitionMap, PartitionSpec

        partition = PartitionSpec("p", [0], (0, 1), (0, 1))
        llc = PartitionedLlc(1, 1, PartitionMap([partition], 1, 1))
        llc.allocate(0, 0)
        victim = llc.choose_victim(1, 3)
        # Owner 0's copy is clean from the LLC's viewpoint: freeing now
        # with no dirty owners is a silent back-invalidation.
        llc.begin_eviction(victim, dirty_owners=[])
        assert llc.extra.silent_back_invalidations == 1
        assert llc.extra.entries_freed == 1

    def test_blocked_counter_reaches_report(self):
        from sim_helpers import shared_partition, small_config
        from repro.workloads.adversarial import conflict_storm_traces

        config = small_config(
            num_cores=4,
            partitions=[shared_partition(4, ways=2, sequencer=True)],
            llc_sets=1,
            llc_ways=2,
            max_slots=300_000,
        )
        traces = conflict_storm_traces(
            cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=6, repeats=10
        )
        report = simulate(config, traces)
        assert report.llc_blocked_slots >= 0
        assert report.llc_stats.accesses > 0
