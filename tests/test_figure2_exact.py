"""Figure 2, reproduced slot by slot (the unbounded scenario).

The paper's Figure 2 under the TDM schedule {c_ua, c_i, c_i}: c_ua's
miss on X evicts l1 (privately cached by c_i); c_i writes l1 back in its
first slot, then *reoccupies the freed entry* with its own request in
its second slot — so at c_ua's next slot the set is full again, forever.

Core mapping: c_ua -> core 0, c_i -> core 1.  Schedule (0, 1, 1).
The interferer uses write-back-first arbitration, the interleaving the
figure depicts.
"""

import pytest

from repro.bus.arbiter import ArbitrationPolicy
from repro.bus.schedule import TdmSchedule
from repro.common.types import AccessType
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.sim.events import EventKind
from repro.sim.simulator import Simulator
from repro.workloads.trace import MemoryTrace, TraceRecord

SW = 50
X = 1000
FILL = [1, 2]          # the interferer's initial resident lines
STREAM = list(range(3, 25))  # its (long) follow-up request stream


@pytest.fixture(scope="module")
def run():
    partition = PartitionSpec("shared", [0], (0, 2), (0, 1), sequencer=False)
    config = SystemConfig(
        num_cores=2,
        partitions=[partition],
        llc_sets=1,
        llc_ways=2,
        slot_width=SW,
        schedule=TdmSchedule((0, 1, 1), SW),
        llc_policy="lru",
        arbitration=ArbitrationPolicy.WRITEBACK_FIRST,
        record_events=True,
        max_slots=45,
    )
    traces = {
        0: MemoryTrace([TraceRecord(X * 64, AccessType.WRITE)]),
        1: MemoryTrace(
            [TraceRecord(b * 64, AccessType.WRITE) for b in FILL + STREAM]
        ),
    }
    # Warmup: the interferer completes one line per slot pair; its two
    # fill lines are resident before cycle 450 (slot 9 = core 0's 4th).
    sim = Simulator(config, traces, start_cycles={0: 450})
    report = sim.run()
    return sim, report


def events_at_slot(report, slot, kind):
    return [e for e in report.events.of_kind(kind) if e.slot == slot]


class TestFigure2SlotBySlot:
    def test_step1_cua_miss_evicts_interferer_line(self, run):
        _sim, report = run
        evictions = events_at_slot(report, 9, EventKind.EVICT_START)
        assert len(evictions) == 1
        assert evictions[0].core == 0
        assert "owners=[1]" in evictions[0].detail

    def test_step2_interferer_writes_back_in_first_slot(self, run):
        _sim, report = run
        writebacks = events_at_slot(report, 10, EventKind.WB_SENT)
        assert len(writebacks) == 1
        assert writebacks[0].core == 1
        assert events_at_slot(report, 10, EventKind.ENTRY_FREED)

    def test_step3_interferer_reoccupies_in_second_slot(self, run):
        _sim, report = run
        allocations = events_at_slot(report, 11, EventKind.LLC_ALLOC)
        assert len(allocations) == 1
        assert allocations[0].core == 1

    def test_step4_set_full_again_at_cuas_next_slot(self, run):
        _sim, report = run
        # Core 0's next slot (12) evicts again — no allocation for it.
        assert events_at_slot(report, 12, EventKind.EVICT_START)
        assert not events_at_slot(report, 12, EventKind.LLC_ALLOC)

    def test_pattern_repeats_every_period(self, run):
        _sim, report = run
        # Three consecutive periods of the steal loop.
        for base in (9, 12, 15):
            assert events_at_slot(report, base, EventKind.EVICT_START), base
            assert events_at_slot(report, base + 1, EventKind.WB_SENT), base
            steal = events_at_slot(report, base + 2, EventKind.LLC_ALLOC)
            assert steal and steal[0].core == 1, base

    def test_cua_starved_when_run_stops(self, run):
        _sim, report = run
        assert report.timed_out
        assert report.starved_cores() == [0]
        core0 = report.core_reports[0]
        assert core0.outstanding_block == X
        assert core0.outstanding_attempts >= 3
