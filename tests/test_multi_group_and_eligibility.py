"""Multiple shared partitions side by side, and slot-eligibility edges."""

import pytest

from repro.analysis.verification import assert_bounds
from repro.common.types import AccessType
from repro.llc.partition import PartitionSpec
from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulator, simulate
from repro.workloads.trace import MemoryTrace, TraceRecord

from sim_helpers import write_trace_of


class TestTwoSharedGroups:
    """Two independent sequencer-ordered groups on one LLC."""

    def config(self):
        partitions = [
            PartitionSpec("groupA", [0], (0, 4), (0, 1), sequencer=True),
            PartitionSpec("groupB", [1], (0, 4), (2, 3), sequencer=True),
        ]
        return SystemConfig(
            num_cores=4,
            partitions=partitions,
            llc_sets=2,
            llc_ways=4,
            record_events=True,
            max_slots=200_000,
        )

    def traces(self):
        # Group A cores fold to set 0, group B cores to set 1 (their
        # partitions have one set each, so everything folds there).
        def storm(base):
            return [
                TraceRecord((base + i) * 64, AccessType.WRITE) for i in range(12)
            ] * 3

        return {
            0: MemoryTrace(storm(0)),
            1: MemoryTrace(storm(100)),
            2: MemoryTrace(storm(200)),
            3: MemoryTrace(storm(300)),
        }

    def test_both_groups_complete_within_bounds(self):
        config = self.config()
        report = simulate(config, self.traces())
        assert not report.timed_out
        assert_bounds(report, config)

    def test_each_group_has_its_own_sequencer(self):
        sim = Simulator(self.config(), self.traces())
        report = sim.run()
        assert set(sim.system.sequencers) == {"groupA", "groupB"}
        for sequencer in sim.system.sequencers.values():
            assert sequencer.stats.registrations >= 0

    def test_groups_do_not_cross_talk(self):
        sim = Simulator(self.config(), self.traces())
        report = sim.run()
        # No back-invalidation event ever targets a core outside the
        # victim's partition group.
        from repro.sim.events import EventKind

        for event in report.events.of_kind(EventKind.BACK_INVALIDATE):
            if event.set_index == 0:
                assert event.core in (0, 1)
            else:
                assert event.core in (2, 3)


class TestSlotEligibility:
    def test_mid_slot_request_waits_for_next_own_slot(self):
        """A miss occurring after the slot boundary cannot use that slot."""
        config = SystemConfig(
            num_cores=1,
            partitions=[PartitionSpec("p", [0], (0, 4), (0,))],
            llc_sets=1,
            llc_ways=4,
            record_events=True,
        )
        # start_cycle puts the (only) miss mid-slot 0.
        trace = write_trace_of([1])
        report = simulate(config, {0: trace}, start_cycles={0: 10})
        record = report.requests[0]
        assert record.enqueued_at == 10
        assert record.first_on_bus_at == 50  # next slot boundary

    def test_boundary_exact_miss_uses_the_slot(self):
        config = SystemConfig(
            num_cores=1,
            partitions=[PartitionSpec("p", [0], (0, 4), (0,))],
            llc_sets=1,
            llc_ways=4,
        )
        report = simulate(config, {0: write_trace_of([1])}, start_cycles={0: 50})
        record = report.requests[0]
        assert record.enqueued_at == 50
        assert record.first_on_bus_at == 50

    def test_non_owner_slot_never_serves_requests(self):
        config = SystemConfig(
            num_cores=2,
            partitions=[
                PartitionSpec("p0", [0], (0, 4), (0,)),
                PartitionSpec("p1", [1], (0, 4), (1,)),
            ],
            llc_sets=2,
            llc_ways=4,
            record_events=True,
        )
        traces = {0: write_trace_of([0, 2, 4]), 1: write_trace_of([1, 3, 5])}
        sim = Simulator(config, traces)
        report = sim.run()
        from repro.sim.events import EventKind

        schedule = sim.system.schedule
        for event in report.events.of_kind(EventKind.REQ_BROADCAST):
            assert schedule.owner_of_slot(event.slot) == event.core

    def test_report_to_dict_flags_starved_cores(self):
        from repro.bus.arbiter import ArbitrationPolicy
        from repro.sim.export import report_to_dict
        from sim_helpers import shared_partition, small_config

        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, ways=1)],
            llc_sets=1,
            llc_ways=1,
            arbitration=ArbitrationPolicy.REQUEST_FIRST,
            max_slots=300,
        )
        traces = {0: write_trace_of([0, 2]), 1: write_trace_of([1, 3])}
        report = simulate(config, traces)
        data = report_to_dict(report)
        assert data["timed_out"]
        assert any(core["starved"] for core in data["cores"].values())
