"""Unit tests for the PRB/PWB buffers and the slot arbiter."""

import pytest

from repro.bus.arbiter import ArbitrationPolicy, PrbPwbArbiter
from repro.bus.buffers import (
    PendingRequest,
    PendingRequestBuffer,
    PendingWritebackBuffer,
    WritebackEntry,
    WritebackReason,
)
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.types import AccessType, TransactionKind


def request(core=0, block=1, at=0):
    return PendingRequest(core=core, block=block, access=AccessType.WRITE, enqueued_at=at)


def writeback(core=0, block=1, at=0, reason=WritebackReason.CAPACITY):
    return WritebackEntry(core=core, block=block, reason=reason, enqueued_at=at)


class TestPendingRequestBuffer:
    def test_push_pop(self):
        prb = PendingRequestBuffer(0)
        entry = request()
        prb.push(entry)
        assert prb.entry is entry
        assert prb.pop() is entry
        assert prb.is_empty

    def test_one_outstanding_request_enforced(self):
        prb = PendingRequestBuffer(0)
        prb.push(request(block=1))
        with pytest.raises(SimulationError, match="one outstanding"):
            prb.push(request(block=2))

    def test_wrong_core_rejected(self):
        prb = PendingRequestBuffer(0)
        with pytest.raises(SimulationError):
            prb.push(request(core=1))

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            PendingRequestBuffer(0).pop()

    def test_latency_of_completed(self):
        entry = request(at=100)
        entry.completed_at = 350
        assert entry.latency == 250

    def test_latency_of_incomplete_rejected(self):
        with pytest.raises(SimulationError):
            request().latency


class TestPendingWritebackBuffer:
    def test_fifo_order(self):
        pwb = PendingWritebackBuffer(0)
        pwb.push(writeback(block=1))
        pwb.push(writeback(block=2))
        assert pwb.pop().block == 1
        assert pwb.pop().block == 2

    def test_peek_does_not_remove(self):
        pwb = PendingWritebackBuffer(0)
        pwb.push(writeback(block=7))
        assert pwb.peek().block == 7
        assert len(pwb) == 1

    def test_peek_empty(self):
        assert PendingWritebackBuffer(0).peek() is None

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            PendingWritebackBuffer(0).pop()

    def test_wrong_core_rejected(self):
        with pytest.raises(SimulationError):
            PendingWritebackBuffer(0).push(writeback(core=2))

    def test_max_occupancy_tracked(self):
        pwb = PendingWritebackBuffer(0)
        for block in range(3):
            pwb.push(writeback(block=block))
        pwb.pop()
        assert pwb.max_occupancy == 3

    def test_blocks_listing(self):
        pwb = PendingWritebackBuffer(0)
        pwb.push(writeback(block=4))
        pwb.push(writeback(block=9))
        assert pwb.blocks() == [4, 9]

    def test_back_invalidation_jumps_capacity(self):
        # The freeing write-back must not wait behind a capacity one:
        # another core may be blocked on the PENDING_EVICT entry, and
        # the Theorem 4.7 decay rate budgets exactly one write-back
        # slot for it.
        pwb = PendingWritebackBuffer(0)
        pwb.push(writeback(block=1))
        pwb.push(writeback(block=2, reason=WritebackReason.BACK_INVALIDATION))
        assert pwb.peek().block == 2
        assert pwb.pop().block == 2
        assert pwb.pop().block == 1

    def test_fifo_within_each_class(self):
        pwb = PendingWritebackBuffer(0)
        pwb.push(writeback(block=1, reason=WritebackReason.BACK_INVALIDATION))
        pwb.push(writeback(block=2))
        pwb.push(writeback(block=3, reason=WritebackReason.BACK_INVALIDATION))
        assert [pwb.pop().block for _ in range(3)] == [1, 3, 2]

    def test_slot_eligibility_cutoff(self):
        # A back-invalidation queued *after* the slot started must not
        # shadow a capacity write-back that was already waiting.
        pwb = PendingWritebackBuffer(0)
        pwb.push(writeback(block=1, at=0))
        pwb.push(
            writeback(block=2, at=100, reason=WritebackReason.BACK_INVALIDATION)
        )
        assert pwb.peek(before=50).block == 1
        assert pwb.pop(before=50).block == 1
        assert pwb.peek(before=50) is None


class TestArbitrationPolicyParse:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("round-robin", ArbitrationPolicy.ROUND_ROBIN),
            ("WRITEBACK-FIRST", ArbitrationPolicy.WRITEBACK_FIRST),
            ("request-first", ArbitrationPolicy.REQUEST_FIRST),
        ],
    )
    def test_parse(self, name, expected):
        assert ArbitrationPolicy.parse(name) is expected

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            ArbitrationPolicy.parse("priority")


class TestArbiter:
    def test_idle_when_nothing_pending(self):
        assert PrbPwbArbiter().choose(False, False) is None

    def test_only_request(self):
        assert PrbPwbArbiter().choose(True, False) is TransactionKind.REQUEST

    def test_only_writeback(self):
        assert PrbPwbArbiter().choose(False, True) is TransactionKind.WRITE_BACK

    def test_round_robin_alternates_under_contention(self):
        arbiter = PrbPwbArbiter(ArbitrationPolicy.ROUND_ROBIN)
        grants = [arbiter.choose(True, True) for _ in range(4)]
        assert grants == [
            TransactionKind.WRITE_BACK,
            TransactionKind.REQUEST,
            TransactionKind.WRITE_BACK,
            TransactionKind.REQUEST,
        ]

    def test_uncontended_grant_preserves_turn(self):
        arbiter = PrbPwbArbiter(ArbitrationPolicy.ROUND_ROBIN)
        assert arbiter.choose(True, True) is TransactionKind.WRITE_BACK
        # Request-only slots do not consume the write-back's next turn...
        assert arbiter.choose(True, False) is TransactionKind.REQUEST
        # ...so the next contended slot goes to the request (whose turn it is).
        assert arbiter.choose(True, True) is TransactionKind.REQUEST

    def test_writeback_first_policy(self):
        arbiter = PrbPwbArbiter(ArbitrationPolicy.WRITEBACK_FIRST)
        for _ in range(3):
            assert arbiter.choose(True, True) is TransactionKind.WRITE_BACK

    def test_request_first_policy(self):
        arbiter = PrbPwbArbiter(ArbitrationPolicy.REQUEST_FIRST)
        for _ in range(3):
            assert arbiter.choose(True, True) is TransactionKind.REQUEST

    def test_reset_restores_initial_preference(self):
        arbiter = PrbPwbArbiter(ArbitrationPolicy.ROUND_ROBIN)
        arbiter.choose(True, True)
        arbiter.reset()
        assert arbiter.choose(True, True) is TransactionKind.WRITE_BACK
