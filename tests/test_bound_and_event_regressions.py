"""Regression tests for the vacuous-bound, CORE_DONE and CLI-default fixes.

Three historical bugs, pinned here so they stay fixed:

1. Bound checks compared against ``observed_wcl`` — which is
   ``max(..., default=0)`` — so a timed-out/starved run reported WCL 0
   and vacuously *passed* every analytical bound.
2. The engine's CORE_DONE event used ``cycle=core.finish_time or 0``,
   conflating a legitimate cycle-0 finish with a missing finish time.
3. The ``timeline`` CLI registered ``--requests`` default 300 via
   ``add_workload_args`` and then silently overrode it to 60 with
   ``set_defaults``, so ``--help`` lied about the default.
"""

import pytest

from sim_helpers import small_config, write_trace_of

from repro.cli import build_parser
from repro.common.errors import SimulationError
from repro.experiments.fig7 import Fig7Result, Fig7Row
from repro.experiments.runner import _fig7_artifact
from repro.sim.events import EventKind
from repro.sim.simulator import simulate
from repro.sim.sweeps import run_seed, require_complete_run, sweep_seeds
from repro.workloads.trace import MemoryTrace


def wedged_report():
    """A report whose run hit the slot cap with work outstanding."""
    config = small_config(num_cores=2, max_slots=3)
    traces = {
        0: write_trace_of(range(0, 40)),
        1: write_trace_of(range(100, 140)),
    }
    report = simulate(config, traces)
    assert report.timed_out, "precondition: the run must hit the slot cap"
    return report


# ----------------------------------------------------------------------
# 1. Vacuous bound checks
# ----------------------------------------------------------------------
class TestVacuousBounds:
    def test_broken_row_fails_its_bound(self):
        row = Fig7Row(
            config="SS(1,16,4)",
            address_range=1024,
            observed_wcl=0,  # the vacuous value a wedged run reports
            analytical_wcl=5000,
            timed_out=True,
        )
        assert not row.complete
        assert not row.within_bound
        starved_row = Fig7Row(
            config="SS(1,16,4)",
            address_range=1024,
            observed_wcl=0,
            analytical_wcl=5000,
            starved=True,
        )
        assert not starved_row.within_bound

    def test_healthy_row_still_passes(self):
        row = Fig7Row(
            config="SS(1,16,4)",
            address_range=1024,
            observed_wcl=4000,
            analytical_wcl=5000,
        )
        assert row.complete and row.within_bound

    def test_broken_row_renders_as_broken_not_ok(self):
        result = Fig7Result(
            rows=[
                Fig7Row("SS(1,16,4)", 1024, 0, 5000, timed_out=True),
                Fig7Row("SS(1,16,4)", 2048, 9999, 5000),
            ]
        )
        assert not result.all_complete()
        assert not result.all_within_bounds()
        rendered = result.render()
        assert "BROKEN" in rendered
        assert "VIOLATED" in rendered

    def test_require_complete_run_rejects_wedged_report(self):
        report = wedged_report()
        with pytest.raises(SimulationError, match="did not complete"):
            require_complete_run(report, context="unit test")

    def test_run_seed_raises_before_the_bound_check_sees_it(self):
        config = small_config(num_cores=2, max_slots=3)

        def factory(seed):
            return {
                0: write_trace_of(range(0, 40)),
                1: write_trace_of(range(100, 140)),
            }

        checked = []
        with pytest.raises(SimulationError, match="seed 7"):
            run_seed(config, factory, seed=7, check=checked.append)
        assert checked == [], "the check must never see a wedged report"

    def test_run_seed_allow_incomplete_opts_out(self):
        config = small_config(num_cores=2, max_slots=3)

        def factory(seed):
            return {
                0: write_trace_of(range(0, 40)),
                1: write_trace_of(range(100, 140)),
            }

        report = run_seed(config, factory, seed=7, allow_incomplete=True)
        assert report.timed_out

    def test_sweep_seeds_fails_loudly_on_wedged_seed(self):
        config = small_config(num_cores=2, max_slots=3)

        def factory(seed):
            return {
                0: write_trace_of(range(0, 40)),
                1: write_trace_of(range(100, 140)),
            }

        with pytest.raises(SimulationError, match="did not complete"):
            sweep_seeds(config, factory, seeds=[1, 2])

    def test_fig7_artifact_reports_incomplete_runs(self, monkeypatch):
        broken = Fig7Result(
            rows=[Fig7Row("SS(1,16,4)", 1024, 0, 5000, timed_out=True)]
        )
        monkeypatch.setattr(
            "repro.experiments.runner.run_fig7", lambda **kwargs: broken
        )
        artifact = _fig7_artifact(num_requests=10)
        assert artifact.checks["all-runs-complete"] is False
        assert artifact.checks["all-within-bounds"] is False
        assert not artifact.passed


# ----------------------------------------------------------------------
# 2. CORE_DONE event cycle
# ----------------------------------------------------------------------
class TestCoreDoneEvent:
    def core_done_cycles(self, report):
        return {
            event.core: event.cycle
            for event in report.events.of_kind(EventKind.CORE_DONE)
        }

    def test_cycle_zero_finish_is_reported_as_zero(self):
        # Core 0's trace is empty: it is done at cycle 0, a legitimate
        # finish time that must appear as such (not as "missing").
        config = small_config(num_cores=2)
        report = simulate(
            config,
            {0: MemoryTrace([], name="empty"), 1: write_trace_of([1, 2])},
        )
        cycles = self.core_done_cycles(report)
        assert cycles[0] == 0
        assert report.core_reports[0].finish_time == 0

    def test_delayed_empty_core_reports_its_start_cycle(self):
        # With a delayed start the empty core's finish time is nonzero;
        # the event must carry it verbatim.
        config = small_config(num_cores=2)
        report = simulate(
            config,
            {0: MemoryTrace([], name="empty"), 1: write_trace_of([1, 2])},
            start_cycles={0: 120},
        )
        cycles = self.core_done_cycles(report)
        assert cycles[0] == 120

    def test_emitted_core_done_events_match_finish_times(self):
        # (The very last core's CORE_DONE is not emitted — the engine
        # stops as soon as everyone is done — so only emitted events
        # are checked here.)
        config = small_config(num_cores=2)
        report = simulate(
            config, {0: write_trace_of([1, 2, 3]), 1: write_trace_of([9])}
        )
        cycles = self.core_done_cycles(report)
        assert cycles, "at least the first finisher must be reported"
        for core_id, cycle in cycles.items():
            assert cycle == report.core_reports[core_id].finish_time


# ----------------------------------------------------------------------
# 3. CLI defaults
# ----------------------------------------------------------------------
class TestCliDefaults:
    def test_timeline_requests_default_is_sixty(self):
        args = build_parser().parse_args(["timeline"])
        assert args.requests == 60

    def test_timeline_help_states_the_real_default(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timeline", "--help"])
        assert "default: 60" in capsys.readouterr().out

    def test_other_workload_commands_keep_the_300_default(self):
        parser = build_parser()
        assert parser.parse_args(["simulate", "SS(1,16,4)"]).requests == 300
        assert parser.parse_args(["workload"]).requests == 300

    def test_jobs_flag_parses_and_normalises(self):
        import os

        parser = build_parser()
        assert parser.parse_args(["fig7"]).jobs == 1
        assert parser.parse_args(["fig7", "--jobs", "3"]).jobs == 3
        # 0 means one worker per CPU, resolved at parse time.
        assert parser.parse_args(["fig7", "--jobs", "0"]).jobs == (
            os.cpu_count() or 1
        )

    def test_jobs_flag_rejects_negative_values(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--jobs", "-2"])
        assert "jobs must be >= 1" in capsys.readouterr().err
