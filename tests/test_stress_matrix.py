"""Stress matrix: policies × arbitration × sequencer, plus empirical
validation of analysis assumptions.

These runs are moderately sized so the default suite stays fast but the
combinatorial space the analysis claims to cover actually gets walked.
"""

import dataclasses

import pytest

from repro.analysis.verification import assert_bounds
from repro.bus.arbiter import ArbitrationPolicy
from repro.sim.simulator import Simulator, simulate
from repro.workloads.adversarial import conflict_storm_traces
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_disjoint_workload,
)

from sim_helpers import shared_partition, small_config

POLICIES = ("lru", "fifo", "plru", "random", "nmru", "round-robin")
ARBITERS = (ArbitrationPolicy.ROUND_ROBIN, ArbitrationPolicy.WRITEBACK_FIRST)


def matrix_config(policy, arbiter, sequencer):
    return small_config(
        num_cores=4,
        partitions=[shared_partition(4, ways=4, sequencer=sequencer)],
        llc_sets=1,
        llc_ways=4,
        llc_policy=policy,
        arbitration=arbiter,
        sequencer=sequencer,
        record_events=False,
        max_slots=400_000,
    )


def storm():
    return conflict_storm_traces(
        cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=8, repeats=8
    )


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("arbiter", ARBITERS)
@pytest.mark.parametrize("sequencer", [False, True])
def test_matrix_completes_within_bounds(policy, arbiter, sequencer):
    config = matrix_config(policy, arbiter, sequencer)
    sim = Simulator(config, storm())
    report = sim.run()
    assert not report.timed_out, (policy, arbiter, sequencer)
    assert report.starved_cores() == []
    assert_bounds(report, config)
    sim.system.check_inclusivity()


class TestAnalysisAssumptions:
    """Empirically validate assumptions the proofs lean on."""

    def test_pwb_stays_small_under_storm(self):
        """Corollary 4.5 argues from "at most (n-1) pending write-backs
        in c_i's PWB".  Back-invalidation write-backs are bounded by the
        in-flight evictions targeting the core; capacity write-backs add
        at most one per fill.  Empirically the PWB must stay within a
        few entries of n - 1."""
        config = matrix_config("lru", ArbitrationPolicy.ROUND_ROBIN, False)
        report = simulate(config, storm())
        n = 4
        for core, occupancy in report.pwb_max_occupancy.items():
            assert occupancy <= n, (core, occupancy)

    def test_one_outstanding_request_everywhere(self):
        """Requests per core never overlap in time."""
        config = matrix_config("lru", ArbitrationPolicy.ROUND_ROBIN, True)
        report = simulate(config, storm())
        by_core = {}
        for record in sorted(report.requests, key=lambda r: r.enqueued_at):
            previous = by_core.get(record.core)
            if previous is not None:
                assert record.enqueued_at >= previous.completed_at
            by_core[record.core] = record

    def test_responses_always_within_owner_slot(self):
        """The LLC only responds within the requester's slot."""
        config = matrix_config("lru", ArbitrationPolicy.ROUND_ROBIN, True)
        sim = Simulator(config, storm())
        report = sim.run()
        schedule = sim.system.schedule
        for record in report.requests:
            slot = schedule.slot_of_cycle(record.completed_at - 1)
            assert schedule.owner_of_slot(slot) == record.core

    def test_hit_classification_consistent_with_llc_stats(self):
        config = small_config(
            num_cores=2,
            partitions=[shared_partition(2, sets=(0, 1, 2, 3), ways=4)],
            llc_sets=4,
            llc_ways=4,
        )
        workload = SyntheticWorkloadConfig(
            num_requests=200, address_range_size=2048, seed=9
        )
        traces = generate_disjoint_workload(workload, [0, 1])
        report = simulate(config, traces)
        served_hits = sum(1 for r in report.requests if r.served_by_hit)
        assert served_hits == report.llc_stats.hits
        assert report.dram_reads == len(report.requests) - served_hits

    def test_miss_latency_exceeds_hit_latency_within_slot(self):
        config = small_config(
            num_cores=1,
            partitions=[shared_partition(1, ways=4)],
            llc_sets=1,
            llc_ways=4,
        )
        from sim_helpers import write_trace_of

        # Miss 0, then capacity-evict nothing; touch 0 again after the
        # L2 drops it via back-invalidation... simplest: re-request a
        # block still VALID in LLC but gone from L2 (small L2).
        from repro.cpu.private_stack import PrivateStackConfig
        from repro.sim.config import SystemConfig

        config = SystemConfig(
            num_cores=1,
            partitions=[shared_partition(1, ways=4)],
            llc_sets=1,
            llc_ways=4,
            stack=PrivateStackConfig(l1_sets=0, l2_sets=1, l2_ways=1),
        )
        report = simulate(config, {0: write_trace_of([0, 1, 0])})
        hits = [r for r in report.requests if r.served_by_hit]
        misses = [r for r in report.requests if not r.served_by_hit]
        assert hits and misses
        assert min(m.bus_latency for m in misses) > min(
            h.bus_latency for h in hits
        )
