"""The delta-debugging shrinker and self-contained repro artifacts."""

import json

import pytest

from repro.cli import main
from repro.common.errors import FuzzError
from repro.robustness.fuzz import generate_cases, run_fuzz_case
from repro.robustness.shrink import (
    load_artifact,
    replay_artifact,
    shrink_case,
    write_artifact,
)


def _detected_chaos_case(budget=40, seed=1, fault_rate=0.6):
    """The first generated case whose injected fault fires and is caught."""
    for case in generate_cases(budget, seed, fault_rate=fault_rate):
        if case.fault is None:
            continue
        result = run_fuzz_case(case)
        if not result.passed and result.fault_fired:
            return case, result
    raise AssertionError("no detected chaos case in the generation window")


class TestShrink:
    def test_injected_fault_shrinks_to_minimal_repro(self):
        case, result = _detected_chaos_case()
        shrunk = shrink_case(case, signature=result.signature)
        # The acceptance criterion: a handful of requests, same failure.
        assert shrunk.minimized_requests <= 8
        assert shrunk.minimized_requests <= shrunk.original_requests
        assert run_fuzz_case(shrunk.minimized).signature == shrunk.signature

    def test_signature_is_derived_when_omitted(self):
        case, result = _detected_chaos_case()
        shrunk = shrink_case(case)
        assert shrunk.signature == result.signature

    def test_shrinking_a_passing_case_raises(self):
        case = generate_cases(1, 0)[0]
        assert run_fuzz_case(case).passed
        with pytest.raises(FuzzError, match="does not fail"):
            shrink_case(case)

    def test_evaluation_budget_is_respected(self):
        case, result = _detected_chaos_case()
        shrunk = shrink_case(case, signature=result.signature, max_evaluations=5)
        assert shrunk.evaluations <= 5
        # Even a starved shrink must still end on the same failure.
        assert shrunk.final.signature == result.signature


class TestArtifacts:
    def test_write_load_replay_round_trip(self, tmp_path):
        case, result = _detected_chaos_case()
        shrunk = shrink_case(case, signature=result.signature)
        path = write_artifact(tmp_path / "repro.json", shrunk)
        loaded, signature = load_artifact(path)
        assert signature == shrunk.signature
        assert loaded == shrunk.minimized
        replay = replay_artifact(path)
        assert replay.reproduced

    def test_replay_is_deterministic(self, tmp_path):
        case, result = _detected_chaos_case()
        path = write_artifact(
            tmp_path / "repro.json", shrink_case(case, signature=result.signature)
        )
        first = replay_artifact(path)
        second = replay_artifact(path)
        assert first.result.to_payload() == second.result.to_payload()

    def test_cli_repro_reproduces(self, tmp_path, capsys):
        case, result = _detected_chaos_case()
        path = write_artifact(
            tmp_path / "repro.json", shrink_case(case, signature=result.signature)
        )
        assert main(["repro", str(path)]) == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_cli_repro_detects_signature_drift(self, tmp_path, capsys):
        case, result = _detected_chaos_case()
        path = write_artifact(
            tmp_path / "repro.json", shrink_case(case, signature=result.signature)
        )
        data = json.loads(path.read_text())
        data["failure"]["signature"] = "oracle:response-latency"
        path.write_text(json.dumps(data))
        assert main(["repro", str(path)]) == 1
        assert "NOT REPRODUCED" in capsys.readouterr().err

    def test_malformed_artifacts_are_rejected(self, tmp_path):
        not_json = tmp_path / "a.json"
        not_json.write_text("{ torn")
        with pytest.raises(FuzzError, match="not JSON"):
            load_artifact(not_json)

        wrong_version = tmp_path / "b.json"
        case, result = _detected_chaos_case()
        good = json.loads(
            write_artifact(
                tmp_path / "good.json",
                shrink_case(case, signature=result.signature),
            ).read_text()
        )
        good["artifact_version"] = 99
        wrong_version.write_text(json.dumps(good))
        with pytest.raises(FuzzError, match="version"):
            load_artifact(wrong_version)

        missing_case = tmp_path / "c.json"
        missing_case.write_text(json.dumps({"artifact_version": 1}))
        with pytest.raises(FuzzError, match="malformed"):
            load_artifact(missing_case)
