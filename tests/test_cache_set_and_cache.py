"""Unit tests for CacheSet and SetAssociativeCache."""

import pytest

from repro.cache.cacheset import CacheSet
from repro.cache.replacement import LruPolicy
from repro.cache.sa_cache import SetAssociativeCache
from repro.common.errors import GeometryError, SimulationError


def make_set(ways: int = 2) -> CacheSet:
    return CacheSet(ways, LruPolicy(ways))


class TestCacheSet:
    def test_starts_empty(self):
        cache_set = make_set()
        assert len(cache_set) == 0
        assert not cache_set.is_full

    def test_fill_and_find(self):
        cache_set = make_set()
        assert cache_set.fill(10, dirty=False) is None
        line = cache_set.find(10)
        assert line is not None and not line.dirty

    def test_fill_dirty(self):
        cache_set = make_set()
        cache_set.fill(10, dirty=True)
        assert cache_set.find(10).dirty

    def test_fill_evicts_lru_when_full(self):
        cache_set = make_set(2)
        cache_set.fill(1, dirty=False)
        cache_set.fill(2, dirty=True)
        evicted = cache_set.fill(3, dirty=False)
        assert evicted is not None
        assert evicted.block == 1
        assert not evicted.dirty

    def test_eviction_reports_dirtiness(self):
        cache_set = make_set(1)
        cache_set.fill(1, dirty=True)
        evicted = cache_set.fill(2, dirty=False)
        assert evicted.block == 1 and evicted.dirty

    def test_touch_marks_dirty_on_write(self):
        cache_set = make_set()
        cache_set.fill(1, dirty=False)
        assert cache_set.touch(1, is_write=True)
        assert cache_set.find(1).dirty

    def test_touch_miss_returns_false(self):
        assert not make_set().touch(99, is_write=False)

    def test_touch_refreshes_lru(self):
        cache_set = make_set(2)
        cache_set.fill(1, dirty=False)
        cache_set.fill(2, dirty=False)
        cache_set.touch(1, is_write=False)
        evicted = cache_set.fill(3, dirty=False)
        assert evicted.block == 2

    def test_double_fill_is_a_bug(self):
        cache_set = make_set()
        cache_set.fill(1, dirty=False)
        with pytest.raises(SimulationError):
            cache_set.fill(1, dirty=False)

    def test_invalidate_removes(self):
        cache_set = make_set()
        cache_set.fill(1, dirty=True)
        removed = cache_set.invalidate(1)
        assert removed.block == 1 and removed.dirty
        assert cache_set.find(1) is None

    def test_invalidate_absent_returns_none(self):
        assert make_set().invalidate(5) is None

    def test_invalidate_frees_capacity(self):
        cache_set = make_set(1)
        cache_set.fill(1, dirty=False)
        cache_set.invalidate(1)
        assert cache_set.fill(2, dirty=False) is None

    def test_mark_clean(self):
        cache_set = make_set()
        cache_set.fill(1, dirty=True)
        assert cache_set.mark_clean(1)
        assert not cache_set.find(1).dirty

    def test_mark_clean_absent(self):
        assert not make_set().mark_clean(9)

    def test_resident_blocks(self):
        cache_set = make_set(4)
        for block in (5, 6, 7):
            cache_set.fill(block, dirty=False)
        assert sorted(cache_set.resident_blocks()) == [5, 6, 7]

    def test_policy_way_count_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            CacheSet(4, LruPolicy(2))


class TestSetAssociativeCache:
    def make(self, sets=4, ways=2, policy="lru"):
        return SetAssociativeCache("test", sets, ways, policy)

    def test_capacity(self):
        assert self.make(4, 2).capacity_lines == 8

    def test_set_index_is_block_mod_sets(self):
        cache = self.make(4, 2)
        assert cache.set_index(0) == 0
        assert cache.set_index(5) == 1
        assert cache.set_index(7) == 3

    def test_miss_then_fill_then_hit(self):
        cache = self.make()
        assert not cache.access(10, is_write=False)
        cache.fill(10, dirty=False)
        assert cache.access(10, is_write=False)

    def test_stats_counting(self):
        cache = self.make()
        cache.access(1, False)
        cache.fill(1, False)
        cache.access(1, False)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.fills == 1

    def test_conflict_eviction_within_set(self):
        cache = self.make(sets=2, ways=1)
        cache.fill(0, dirty=False)
        evicted = cache.fill(2, dirty=False)  # same set (2 % 2 == 0)
        assert evicted.block == 0
        assert cache.stats.evictions == 1

    def test_different_sets_do_not_conflict(self):
        cache = self.make(sets=2, ways=1)
        cache.fill(0, dirty=False)
        assert cache.fill(1, dirty=False) is None

    def test_dirty_eviction_counted(self):
        cache = self.make(sets=1, ways=1)
        cache.fill(0, dirty=True)
        cache.fill(1, dirty=False)
        assert cache.stats.dirty_evictions == 1

    def test_write_access_dirties(self):
        cache = self.make()
        cache.fill(3, dirty=False)
        cache.access(3, is_write=True)
        assert cache.is_dirty(3)

    def test_invalidate_counts(self):
        cache = self.make()
        cache.fill(3, dirty=True)
        cache.invalidate(3)
        assert cache.stats.invalidations == 1
        assert cache.stats.dirty_invalidations == 1

    def test_occupancy_and_resident_blocks(self):
        cache = self.make(4, 2)
        for block in (0, 1, 2):
            cache.fill(block, dirty=False)
        assert cache.occupancy() == 3
        assert sorted(cache.resident_blocks()) == [0, 1, 2]

    def test_contains_has_no_side_effects(self):
        cache = self.make()
        cache.fill(1, dirty=False)
        cache.contains(1)
        assert cache.stats.accesses == 0

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(GeometryError):
            self.make(sets=3)

    def test_rejects_zero_ways(self):
        with pytest.raises(GeometryError):
            SetAssociativeCache("x", 4, 0)

    def test_hit_rate(self):
        cache = self.make()
        cache.fill(1, dirty=False)
        cache.access(1, False)
        cache.access(2, False)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_stats_merge(self):
        first = self.make()
        second = self.make()
        first.access(1, False)
        second.fill(1, False)
        second.access(1, False)
        merged = first.stats.merge(second.stats)
        assert merged.accesses == 2
        assert merged.hits == 1
        assert merged.misses == 1
