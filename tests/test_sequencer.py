"""Unit tests for the set sequencer (QLT + SQ, Section 4.5)."""

import pytest

from repro.common.errors import SimulationError
from repro.sequencer.qlt import QueueLookupTable
from repro.sequencer.set_sequencer import SetSequencer
from repro.sequencer.sq import SequencerQueue


class TestSequencerQueue:
    def test_fifo_order(self):
        queue = SequencerQueue(0)
        queue.enqueue(2)
        queue.enqueue(0)
        queue.enqueue(3)
        assert queue.snapshot() == (2, 0, 3)
        assert queue.head == 2

    def test_pop_head(self):
        queue = SequencerQueue(0)
        queue.enqueue(1)
        queue.enqueue(2)
        queue.pop_head(1)
        assert queue.head == 2

    def test_pop_wrong_core_rejected(self):
        queue = SequencerQueue(0)
        queue.enqueue(1)
        queue.enqueue(2)
        with pytest.raises(SimulationError):
            queue.pop_head(2)

    def test_duplicate_enqueue_rejected(self):
        queue = SequencerQueue(0)
        queue.enqueue(1)
        with pytest.raises(SimulationError):
            queue.enqueue(1)

    def test_remove_mid_queue(self):
        queue = SequencerQueue(0)
        for core in (1, 2, 3):
            queue.enqueue(core)
        assert queue.remove(2)
        assert queue.snapshot() == (1, 3)
        assert not queue.remove(2)

    def test_max_depth(self):
        queue = SequencerQueue(0)
        for core in (1, 2, 3):
            queue.enqueue(core)
        queue.pop_head(1)
        assert queue.max_depth == 3

    def test_contains(self):
        queue = SequencerQueue(0)
        queue.enqueue(5)
        assert queue.contains(5)
        assert not queue.contains(6)


class TestQueueLookupTable:
    def test_acquire_maps_set(self):
        qlt = QueueLookupTable(num_sets=8)
        queue = qlt.acquire(3)
        assert queue is qlt.queue_for(3)
        assert qlt.active_entries == 1

    def test_acquire_is_stable(self):
        qlt = QueueLookupTable(num_sets=8)
        assert qlt.acquire(3) is qlt.acquire(3)

    def test_release_only_when_empty(self):
        qlt = QueueLookupTable(num_sets=8)
        queue = qlt.acquire(3)
        queue.enqueue(0)
        qlt.release_if_empty(3)
        assert qlt.queue_for(3) is queue
        queue.pop_head(0)
        qlt.release_if_empty(3)
        assert qlt.queue_for(3) is None

    def test_queue_pool_recycled(self):
        qlt = QueueLookupTable(num_sets=8, max_queues=1)
        qlt.acquire(0)
        qlt.release_if_empty(0)
        assert qlt.acquire(5) is not None

    def test_overflow_returns_none_and_counts(self):
        qlt = QueueLookupTable(num_sets=8, max_queues=1)
        first = qlt.acquire(0)
        first.enqueue(0)
        assert qlt.acquire(1) is None
        assert qlt.overflows == 1

    def test_out_of_range_set_rejected(self):
        with pytest.raises(SimulationError):
            QueueLookupTable(num_sets=4).acquire(4)


class TestSetSequencer:
    def test_register_in_broadcast_order(self):
        sequencer = SetSequencer(num_sets=8)
        sequencer.register(2, 0)
        sequencer.register(0, 0)
        assert sequencer.queue_snapshot(0) == (2, 0)

    def test_register_is_idempotent_per_request(self):
        sequencer = SetSequencer(num_sets=8)
        sequencer.register(1, 0)
        sequencer.register(1, 0)
        assert sequencer.queue_snapshot(0) == (1,)

    def test_only_head_may_claim(self):
        sequencer = SetSequencer(num_sets=8)
        sequencer.register(2, 0)
        sequencer.register(1, 0)
        assert sequencer.may_claim(2, 0)
        assert not sequencer.may_claim(1, 0)

    def test_unqueued_core_may_claim_empty_set(self):
        sequencer = SetSequencer(num_sets=8)
        assert sequencer.may_claim(0, 5)

    def test_complete_pops_head_and_promotes_next(self):
        sequencer = SetSequencer(num_sets=8)
        sequencer.register(2, 0)
        sequencer.register(1, 0)
        sequencer.complete(2, 0)
        assert sequencer.may_claim(1, 0)

    def test_complete_of_unregistered_core_is_noop(self):
        sequencer = SetSequencer(num_sets=8)
        sequencer.complete(0, 3)  # completed on first attempt

    def test_cancel_from_middle(self):
        sequencer = SetSequencer(num_sets=8)
        for core in (3, 1, 2):
            sequencer.register(core, 0)
        sequencer.cancel(1)
        assert sequencer.queue_snapshot(0) == (3, 2)

    def test_queue_released_after_drain(self):
        sequencer = SetSequencer(num_sets=8)
        sequencer.register(0, 4)
        sequencer.complete(0, 4)
        assert sequencer.qlt.active_entries == 0

    def test_is_queued_tracking(self):
        sequencer = SetSequencer(num_sets=8)
        assert not sequencer.is_queued(0)
        sequencer.register(0, 2)
        assert sequencer.is_queued(0)
        assert sequencer.queued_set_of(0) == 2
        sequencer.complete(0, 2)
        assert not sequencer.is_queued(0)

    def test_overflow_falls_back_to_best_effort(self):
        sequencer = SetSequencer(num_sets=8, max_queues=1)
        sequencer.register(0, 0)
        sequencer.register(1, 5)  # overflows, handled best-effort
        assert sequencer.may_claim(1, 5)
        sequencer.complete(1, 5)
        assert sequencer.qlt.overflows == 1

    def test_stats_counting(self):
        sequencer = SetSequencer(num_sets=8)
        sequencer.register(0, 0)
        sequencer.register(1, 0)
        sequencer.may_claim(0, 0)
        sequencer.may_claim(1, 0)
        sequencer.complete(0, 0)
        assert sequencer.stats.registrations == 2
        assert sequencer.stats.head_grants == 1
        assert sequencer.stats.blocked_not_head == 1
        assert sequencer.stats.completions == 1

    def test_separate_sets_have_independent_queues(self):
        sequencer = SetSequencer(num_sets=8)
        sequencer.register(0, 1)
        sequencer.register(1, 2)
        assert sequencer.may_claim(0, 1)
        assert sequencer.may_claim(1, 2)
