"""Documentation integrity: doctests run, README snippets execute.

Documentation that drifts from the code is worse than none; these tests
execute every doctest in modules that carry examples, and every
``python`` code block in README.md, so the documented API calls are
checked on each run.
"""

import doctest
import re
from pathlib import Path

import pytest

import repro.bus.schedule
import repro.common.intmath
import repro.common.units
import repro.llc.partition
import repro.sim.export

REPO_ROOT = Path(__file__).resolve().parent.parent

MODULES_WITH_DOCTESTS = [
    repro.common.units,
    repro.common.intmath,
    repro.bus.schedule,
    repro.llc.partition,
    repro.sim.export,
]


class TestDoctests:
    @pytest.mark.parametrize(
        "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
    )
    def test_module_doctests_pass(self, module):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{module.__name__}: {results.failed} failed"

    def test_doctests_actually_exist(self):
        total = sum(
            doctest.testmod(module, verbose=False).attempted
            for module in MODULES_WITH_DOCTESTS
        )
        assert total >= 4, "expected documented examples to be present"


def python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, re.DOTALL)


class TestReadmeSnippets:
    def test_readme_has_python_snippets(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert len(python_blocks(readme)) >= 2

    def test_readme_snippets_execute(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for index, block in enumerate(python_blocks(readme)):
            namespace: dict = {}
            try:
                exec(compile(block, f"README.md:block{index}", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"README python block {index} failed: {exc}\n{block}")

    def test_module_docstring_quickstart_executes(self):
        import repro

        blocks = re.findall(
            r"::\n\n((?:    .*\n)+)", repro.__doc__ or "", re.MULTILINE
        )
        assert blocks, "package docstring should contain a quickstart"
        code = "\n".join(
            line[4:] for line in blocks[0].splitlines()
        )
        namespace: dict = {}
        exec(compile(code, "repro.__doc__", "exec"), namespace)


DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "API.md",
    REPO_ROOT / "docs" / "MODEL.md",
    REPO_ROOT / "docs" / "OBSERVABILITY.md",
    REPO_ROOT / "docs" / "PERFORMANCE.md",
    REPO_ROOT / "docs" / "ROBUSTNESS.md",
]


class TestCrossLinks:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, doc):
        """Every relative markdown link in the doc set points at a file."""
        for match in re.finditer(r"\]\(([^)]+)\)", doc.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            path = (doc.parent / target.split("#")[0]).resolve()
            assert path.exists(), f"{doc.name}: broken link -> {target}"


class TestPerformanceDoc:
    """docs/PERFORMANCE.md carries the result-cache contract."""

    @property
    def text(self):
        return (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text()

    def test_covers_key_derivation_invalidation_and_gc(self):
        for needle in (
            "MODEL_SCHEMA_VERSION",  # the invalidation stamp
            "length-framed",  # trace fingerprint derivation
            "repro-llc cache",  # stats / verify / gc entry points
            "--max-bytes",
            "--max-age",
            "sim_cache.hits",  # observability counters
            "byte-identical",  # the hard guarantee
            "tmp → fsync → rename",  # crash-safe write discipline
        ):
            assert needle in self.text, f"PERFORMANCE.md must cover {needle!r}"

    def test_matches_the_code_constants(self):
        from repro.sim import cache

        assert f'"{cache.RESULT_CACHE_KIND}"' in self.text
        assert str(cache.MODEL_SCHEMA_VERSION) is not None  # importable

    def test_readme_and_api_cross_link(self):
        readme = (REPO_ROOT / "README.md").read_text()
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        assert "docs/PERFORMANCE.md" in readme
        assert "PERFORMANCE.md" in api
        assert "repro.sim.cache" in api

    def test_named_benchmark_gate_files_exist(self):
        for path in re.findall(r"`(benchmarks/[\w./-]+)`", self.text):
            assert (REPO_ROOT / path).exists(), f"missing gate file {path}"

    def test_named_test_files_exist(self):
        for path in re.findall(r"`(tests/[\w./-]+)`", self.text):
            assert (REPO_ROOT / path).exists(), f"missing test file {path}"


class TestRobustnessIoFaultDoc:
    """docs/ROBUSTNESS.md carries the I/O durability & fault contract."""

    @property
    def text(self):
        return (REPO_ROOT / "docs" / "ROBUSTNESS.md").read_text()

    def test_covers_durability_classes_and_breaker_semantics(self):
        for needle in (
            "I/O fault tolerance & degradation policy",
            "ESSENTIAL",
            "BEST-EFFORT",
            "EssentialRetryPolicy",
            "circuit breaker",
            "PersistenceError",
            "io.degraded",
            "io.swallowed",
            "byte-identical",
        ):
            assert needle in self.text, f"ROBUSTNESS.md must cover {needle!r}"

    def test_covers_the_fault_injection_grammar(self):
        for needle in (
            "--io-fault",
            "--io-fault-seed",
            "repro.robustness.iofault",
            "enospc",
            "short-write",
            "corrupt-read",
            "site=result-cache",
        ):
            assert needle in self.text, f"ROBUSTNESS.md must cover {needle!r}"

    def test_matches_the_code_constants(self):
        from repro.common import fileio
        from repro.robustness import iofault

        assert f"`DEGRADE_AFTER` ({fileio.DEGRADE_AFTER})" in self.text
        for kind in iofault.IoFaultKind:
            assert kind.value in self.text, (
                f"ROBUSTNESS.md must list fault kind {kind.value!r}"
            )

    def test_readme_and_api_cross_link(self):
        readme = (REPO_ROOT / "README.md").read_text()
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        assert "--io-fault" in readme
        assert "docs/ROBUSTNESS.md" in readme
        assert "repro.robustness.iofault" in api
        assert "repro.common.fileio" in api

    def test_named_test_files_exist(self):
        for path in re.findall(r"`(tests/[\w./-]+)`", self.text):
            assert (REPO_ROOT / path).exists(), f"missing test file {path}"
