"""Documentation integrity: doctests run, README snippets execute.

Documentation that drifts from the code is worse than none; these tests
execute every doctest in modules that carry examples, and every
``python`` code block in README.md, so the documented API calls are
checked on each run.
"""

import doctest
import re
from pathlib import Path

import pytest

import repro.bus.schedule
import repro.common.intmath
import repro.common.units
import repro.llc.partition
import repro.sim.export

REPO_ROOT = Path(__file__).resolve().parent.parent

MODULES_WITH_DOCTESTS = [
    repro.common.units,
    repro.common.intmath,
    repro.bus.schedule,
    repro.llc.partition,
    repro.sim.export,
]


class TestDoctests:
    @pytest.mark.parametrize(
        "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
    )
    def test_module_doctests_pass(self, module):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{module.__name__}: {results.failed} failed"

    def test_doctests_actually_exist(self):
        total = sum(
            doctest.testmod(module, verbose=False).attempted
            for module in MODULES_WITH_DOCTESTS
        )
        assert total >= 4, "expected documented examples to be present"


def python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, re.DOTALL)


class TestReadmeSnippets:
    def test_readme_has_python_snippets(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert len(python_blocks(readme)) >= 2

    def test_readme_snippets_execute(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for index, block in enumerate(python_blocks(readme)):
            namespace: dict = {}
            try:
                exec(compile(block, f"README.md:block{index}", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"README python block {index} failed: {exc}\n{block}")

    def test_module_docstring_quickstart_executes(self):
        import repro

        blocks = re.findall(
            r"::\n\n((?:    .*\n)+)", repro.__doc__ or "", re.MULTILINE
        )
        assert blocks, "package docstring should contain a quickstart"
        code = "\n".join(
            line[4:] for line in blocks[0].splitlines()
        )
        namespace: dict = {}
        exec(compile(code, "repro.__doc__", "exec"), namespace)
