"""Unit tests for report export, latency statistics and timelines."""

import csv
import json

import pytest

from repro.common.errors import ReproError
from repro.sim.export import (
    LatencyStats,
    core_latency_stats,
    latency_histogram,
    percentile,
    report_to_dict,
    write_report_json,
    write_requests_csv,
)
from repro.sim.simulator import Simulator, simulate
from repro.sim.timeline import LEGEND, render_timeline

from sim_helpers import shared_partition, small_config, write_trace_of


@pytest.fixture(scope="module")
def sample_run():
    config = small_config(num_cores=2)
    traces = {0: write_trace_of([0, 4, 8]), 1: write_trace_of([1, 5, 9])}
    sim = Simulator(config, traces)
    return sim, sim.run()


class TestPercentile:
    def test_nearest_rank(self):
        sample = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert percentile(sample, 50) == 50
        assert percentile(sample, 90) == 90
        assert percentile(sample, 99) == 100
        assert percentile(sample, 100) == 100

    def test_single_element(self):
        assert percentile([42], 50) == 42
        assert percentile([42], 99) == 42

    def test_returns_observed_value(self):
        sample = sorted([13, 77, 200, 1042])
        for pct in (10, 25, 50, 75, 90, 99):
            assert percentile(sample, pct) in sample

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            percentile([], 50)

    def test_bad_pct_rejected(self):
        with pytest.raises(ReproError):
            percentile([1], 0)
        with pytest.raises(ReproError):
            percentile([1], 101)


class TestLatencyStats:
    def test_basic(self):
        stats = LatencyStats.of([100, 200, 300, 400])
        assert stats.count == 4
        assert stats.minimum == 100
        assert stats.maximum == 400
        assert stats.mean == 250
        assert stats.p50 == 200

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            LatencyStats.of([])

    def test_from_report(self, sample_run):
        _sim, report = sample_run
        stats = core_latency_stats(report)
        assert stats.count == len(report.requests)
        assert stats.maximum == report.observed_wcl()


class TestHistogram:
    def test_buckets_by_width(self):
        histogram = latency_histogram([45, 95, 96, 245], 50)
        assert histogram == {0: 1, 50: 2, 200: 1}

    def test_bad_width_rejected(self):
        with pytest.raises(ReproError):
            latency_histogram([1], 0)

    def test_counts_preserved(self):
        latencies = [10, 20, 30, 110, 120, 510]
        histogram = latency_histogram(latencies, 100)
        assert sum(histogram.values()) == len(latencies)


class TestExport:
    def test_report_dict_fields(self, sample_run):
        _sim, report = sample_run
        data = report_to_dict(report)
        assert data["makespan"] == report.makespan
        assert data["observed_wcl"] == report.observed_wcl()
        assert data["llc"]["hit_rate"] == report.llc_stats.hit_rate
        assert set(data["cores"]) == {"0", "1"}

    def test_json_roundtrip(self, sample_run, tmp_path):
        _sim, report = sample_run
        path = tmp_path / "report.json"
        write_report_json(report, path)
        loaded = json.loads(path.read_text())
        assert loaded == report_to_dict(report)

    def test_csv_rows(self, sample_run, tmp_path):
        _sim, report = sample_run
        path = tmp_path / "requests.csv"
        write_requests_csv(report, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(report.requests)
        assert int(rows[0]["latency"]) == report.requests[0].latency


class TestTimeline:
    def test_renders_rows_per_core(self, sample_run):
        sim, report = sample_run
        text = render_timeline(
            report.events, sim.system.schedule, num_cores=2, num_slots=20
        )
        lines = text.splitlines()
        assert any(line.startswith("core  0") for line in lines)
        assert any(line.startswith("core  1") for line in lines)
        assert lines[-1] == LEGEND

    def test_row_width_matches_slots(self, sample_run):
        sim, report = sample_run
        text = render_timeline(
            report.events, sim.system.schedule, num_cores=2, num_slots=30
        )
        for line in text.splitlines():
            if line.startswith("core"):
                assert len(line[8:]) == 30

    def test_alternating_ownership(self, sample_run):
        sim, report = sample_run
        text = render_timeline(
            report.events, sim.system.schedule, num_cores=2, num_slots=10
        )
        core0_row = next(
            line for line in text.splitlines() if line.startswith("core  0")
        )
        cells = core0_row[8:]
        # Core 0 owns even slots in the default 2-core 1S-TDM.
        assert all(cells[i] == "." for i in range(1, 10, 2))
        assert all(cells[i] != "." for i in range(0, 10, 2))

    def test_contains_activity_symbols(self, sample_run):
        sim, report = sample_run
        text = render_timeline(
            report.events, sim.system.schedule, num_cores=2, num_slots=20
        )
        body = "".join(
            line[8:]
            for line in text.splitlines()
            if line.startswith("core")
        )
        assert "A" in body  # allocations happened

    def test_empty_log_rejected(self, sample_run):
        sim, _report = sample_run
        from repro.sim.events import EventLog

        with pytest.raises(ReproError, match="record_events"):
            render_timeline(EventLog(), sim.system.schedule, num_cores=2)

    def test_bad_num_slots_rejected(self, sample_run):
        sim, report = sample_run
        with pytest.raises(ReproError):
            render_timeline(
                report.events, sim.system.schedule, num_cores=2, num_slots=0
            )
