"""Tests for interference decomposition and the admission planner."""

import pytest

from repro.analysis.admission import (
    AdmissionPlan,
    PlatformSpec,
    TaskSpec,
    plan_admission,
)
from repro.analysis.interference import (
    decompose_report,
    summarize,
    worst_request,
)
from repro.analysis.wcl import wcl_private_cycles
from repro.common.errors import AnalysisError
from repro.llc.partition import PartitionMap
from repro.sim.config import SystemConfig
from repro.sim.simulator import Simulator, simulate
from repro.workloads.adversarial import conflict_storm_traces

from sim_helpers import shared_partition, small_config, write_trace_of


class TestInterferenceDecomposition:
    @pytest.fixture(scope="class")
    def storm_run(self):
        config = small_config(
            num_cores=4,
            partitions=[shared_partition(4, ways=4, sequencer=True)],
            llc_sets=1,
            llc_ways=4,
            max_slots=200_000,
        )
        traces = conflict_storm_traces(
            cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=8, repeats=10
        )
        sim = Simulator(config, traces)
        return sim, sim.run()

    def test_every_request_decomposed(self, storm_run):
        sim, report = storm_run
        breakdowns = decompose_report(report, sim.system.schedule)
        assert len(breakdowns) == len(report.requests)

    def test_own_slots_fit_the_window(self, storm_run):
        sim, report = storm_run
        for breakdown in decompose_report(report, sim.system.schedule):
            window_slots = breakdown.own_slots + breakdown.other_core_slots
            window_cycles = window_slots * sim.system.schedule.slot_width
            assert breakdown.latency <= breakdown.wait_for_first_slot + window_cycles

    def test_completed_requests_have_a_service_slot(self, storm_run):
        sim, report = storm_run
        for breakdown in decompose_report(report, sim.system.schedule):
            assert breakdown.service_slots >= 1

    def test_storm_produces_contention_components(self, storm_run):
        sim, report = storm_run
        totals = summarize(decompose_report(report, sim.system.schedule))
        assert totals["requests"] == len(report.requests)
        # A 4-core storm on one set must block someone at some point.
        contention = (
            totals["blocked_full_slots"]
            + totals["sequencer_blocked_slots"]
            + totals["eviction_trigger_slots"]
        )
        assert contention > 0

    def test_worst_request_is_the_wcl(self, storm_run):
        sim, report = storm_run
        worst = worst_request(decompose_report(report, sim.system.schedule))
        assert worst.latency == report.observed_wcl()

    def test_requires_event_log(self):
        config = small_config(num_cores=2, record_events=False)
        traces = {0: write_trace_of([0]), 1: write_trace_of([1])}
        sim = Simulator(config, traces)
        report = sim.run()
        with pytest.raises(AnalysisError, match="record_events"):
            decompose_report(report, sim.system.schedule)

    def test_summarize_empty(self):
        assert summarize([]) == {}

    def test_worst_of_empty_rejected(self):
        with pytest.raises(AnalysisError):
            worst_request([])


def task(name, core, budget, footprint=4096, sharing=True, crit="QM"):
    return TaskSpec(
        name=name,
        core=core,
        latency_budget_cycles=budget,
        footprint_bytes=footprint,
        allow_sharing=sharing,
        criticality=crit,
    )


class TestAdmissionPlanner:
    def platform(self, **overrides):
        return PlatformSpec(**overrides)

    def test_isolated_task_gets_private_partition(self):
        plan = plan_admission(
            [task("ctrl", 0, budget=500, sharing=False), task("gui", 1, budget=9000)]
        )
        verdict = plan.verdicts["ctrl"]
        assert verdict.partition_name.startswith("private-")
        assert verdict.shared_with == ()
        assert verdict.bound_cycles == wcl_private_cycles(4, 50)
        assert verdict.admitted

    def test_generous_budgets_share_one_partition(self):
        plan = plan_admission(
            [task(f"t{i}", i, budget=20_000) for i in range(4)]
        )
        names = {v.partition_name for v in plan.verdicts.values()}
        assert len(names) == 1
        partition = plan.partitions[0]
        assert partition.sequencer
        assert partition.num_cores == 4
        assert plan.feasible

    def test_tight_budget_excluded_from_group(self):
        # 450 < bound of any shared group => must be private.
        plan = plan_admission(
            [task("tight", 0, budget=450)]
            + [task(f"t{i}", i, budget=20_000) for i in range(1, 4)]
        )
        assert plan.verdicts["tight"].shared_with == ()
        assert plan.verdicts["tight"].admitted
        assert plan.feasible

    def test_group_grows_only_while_bounds_fit(self):
        # Bound for n=2 is 2000; for n=3 it is 2600 (N=4, SW=50).
        budgets = {"a": 2_000, "b": 2_000, "c": 50_000, "d": 50_000}
        plan = plan_admission(
            [task(name, core, budget) for core, (name, budget) in enumerate(budgets.items())]
        )
        assert plan.feasible
        # a and b can only be with each other (n=2 bound fits, n=3 doesn't).
        group_of_a = {plan.verdicts["a"].partition_name}
        assert plan.verdicts["b"].partition_name in group_of_a

    def test_infeasible_budget_reported_not_raised(self):
        plan = plan_admission([task("impossible", 0, budget=100)])
        assert not plan.feasible
        verdict = plan.verdicts["impossible"]
        assert not verdict.admitted
        assert verdict.slack_cycles < 0

    def test_partitions_feed_system_config(self):
        plan = plan_admission(
            [task(f"t{i}", i, budget=20_000, footprint=2048) for i in range(4)]
        )
        config = SystemConfig(
            num_cores=4,
            partitions=plan.partitions,
            llc_sets=plan.platform.llc_sets,
            llc_ways=plan.platform.llc_ways,
        )
        report = simulate(
            config,
            {core: write_trace_of([core * 64, core * 64 + 4]) for core in range(4)},
        )
        assert not report.timed_out

    def test_footprint_drives_set_allocation(self):
        plan = plan_admission(
            [
                task("big", 0, budget=400, footprint=16_384, sharing=False),
                task("small", 1, budget=400, footprint=1_024, sharing=False),
            ]
        )
        big = next(p for p in plan.partitions if p.name == "private-big")
        small = next(p for p in plan.partitions if p.name == "private-small")
        assert big.num_sets > small.num_sets

    def test_overcommitted_llc_scaled_down(self):
        plan = plan_admission(
            [
                task(f"t{i}", i, budget=400, footprint=64_000, sharing=False)
                for i in range(4)
            ]
        )
        assert plan.sets_used <= plan.platform.llc_sets
        assert plan.utilization() <= 1.0
        # Proportional scaling keeps everyone >= 1 set.
        assert all(p.num_sets >= 1 for p in plan.partitions)

    def test_duplicate_cores_rejected(self):
        with pytest.raises(AnalysisError, match="one task per core"):
            plan_admission([task("a", 0, 400), task("b", 0, 400)])

    def test_core_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            plan_admission([task("a", 9, 400)])

    def test_empty_taskset_rejected(self):
        with pytest.raises(AnalysisError):
            plan_admission([])

    def test_utilization_counts_granted_sets(self):
        plan = plan_admission(
            [task("only", 0, budget=500, footprint=2_048, sharing=False)]
        )
        assert plan.sets_used == 2  # ceil(2048 / (16 ways * 64B))
        assert plan.utilization() == pytest.approx(2 / 32)
