"""Setuptools shim.

The modern metadata lives in pyproject.toml; this file exists so the
package installs in environments whose setuptools cannot build PEP 660
editable wheels (e.g. offline boxes without the ``wheel`` package):
``python setup.py develop`` there, ``pip install -e .`` elsewhere.
"""

from setuptools import setup

setup()
