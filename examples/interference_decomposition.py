#!/usr/bin/env python3
"""Explain where an observed worst-case latency actually went.

Runs the Figure 7 storm on SS and NSS, then decomposes every request's
latency into the categories of Theorem 4.7's critical instance
(Figure 5): waiting for the first slot, the core's own write-backs,
blocked slots, sequencer refusals, eviction triggers, and the final
service slot — plus the distance dynamics (Observations 1 and 3)
reconstructed from the event log.

Run:  python examples/interference_decomposition.py
"""

import dataclasses

from repro import (
    ArbitrationPolicy,
    decompose_report,
    summarize,
    tracker_from_events,
    worst_request,
)
from repro.experiments.configs import build_system_for_notation
from repro.experiments.tables import render_table
from repro.experiments.tightness import install_adversarial_replacement
from repro.sim.simulator import Simulator
from repro.workloads.adversarial import conflict_storm_traces


def run(notation: str):
    # Symmetric LRU storms evict mostly *self*-owned lines (round-robin
    # ages make the requester's own line the LRU victim), so to expose
    # inter-core interference we use the adversarial steering of the
    # tightness experiment: oracle replacement picking far-owner victims
    # plus write-back-first arbitration.
    config = build_system_for_notation(
        notation, num_cores=4, llc_policy="oracle", record_events=True
    )
    config = dataclasses.replace(
        config, arbitration=ArbitrationPolicy.WRITEBACK_FIRST
    )
    traces = conflict_storm_traces(
        cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=18, repeats=12
    )
    sim = Simulator(config, traces)
    install_adversarial_replacement(sim)
    return sim, sim.run()


def main() -> None:
    rows = []
    for notation in ("SS(1,16,4)", "NSS(1,16,4)"):
        sim, report = run(notation)
        breakdowns = decompose_report(report, sim.system.schedule)
        totals = summarize(breakdowns)
        worst = worst_request(breakdowns)
        rows.append(
            [
                notation,
                totals["requests"],
                f"{totals['mean_latency']:.0f}",
                worst.latency,
                totals["blocked_full_slots"],
                totals["sequencer_blocked_slots"],
                totals["own_writeback_slots"],
            ]
        )

        tracker = tracker_from_events(report.events, sim.system.schedule, observer=0)
        increases = sum(
            tracker.increases(key, across_gaps=True) for key in tracker.history
        )
        decreases = sum(
            tracker.decreases(key, across_gaps=True) for key in tracker.history
        )
        print(
            f"{notation}: entry-distance dynamics seen by core 0 — "
            f"{decreases} decreases (Observation 1), "
            f"{increases} increases (Observation 3)"
        )
        print(
            f"  worst request: core {worst.core}, {worst.latency} cycles = "
            f"{worst.wait_for_first_slot} wait + own slots "
            f"[{worst.eviction_trigger_slots} evict, {worst.blocked_full_slots} "
            f"blocked, {worst.sequencer_blocked_slots} seq, "
            f"{worst.own_writeback_slots} WB, {worst.service_slots} service] "
            f"+ {worst.other_core_slots} other-core slots\n"
        )

    print(
        render_table(
            [
                "config",
                "requests",
                "mean lat",
                "WCL",
                "blocked",
                "seq-blocked",
                "own WBs",
            ],
            rows,
            title="Interference totals on the same storm",
        )
    )
    print(
        "\nNSS accumulates blocked slots from distance increases; SS converts\n"
        "them into ordered sequencer waits with a much smaller tail."
    )


if __name__ == "__main__":
    main()
