#!/usr/bin/env python3
"""Quickstart: simulate the paper's 4-core platform and read the report.

Builds the Section 5 evaluation system (4 cores, 4-way x 16-set private
L2s, a 16-way x 32-set LLC, 64-byte lines, 1S-TDM bus with 50-cycle
slots), runs the paper's synthetic workload on the three partition
configurations, and prints observed WCLs against the analytical bounds.

Run:  python examples/quickstart.py
"""

from repro import (
    PAPER_CORE_CAPACITY_LINES,
    PartitionKind,
    PartitionNotation,
    SyntheticWorkloadConfig,
    analytical_wcl_cycles,
    fig7_system,
    generate_disjoint_workload,
    simulate,
)
from repro.experiments.tables import render_table


def main() -> None:
    # The paper's synthetic workload: random writes within a disjoint
    # 4 KiB address range per core (Section 5, "Workload generation").
    workload = SyntheticWorkloadConfig(
        num_requests=400,
        address_range_size=4096,
        write_fraction=1.0,
        seed=2022,
    )

    rows = []
    for notation_text in ("SS(1,16,4)", "NSS(1,16,4)", "P(1,16)"):
        notation = PartitionNotation.parse(notation_text)
        config = fig7_system(notation.kind)
        traces = generate_disjoint_workload(workload, range(config.num_cores))

        report = simulate(config, traces)

        bound = analytical_wcl_cycles(
            notation,
            total_cores=config.num_cores,
            slot_width=config.slot_width,
            core_capacity_lines=PAPER_CORE_CAPACITY_LINES,
        )
        rows.append(
            [
                notation_text,
                report.observed_wcl(),
                bound,
                report.makespan,
                f"{report.llc_stats.hit_rate:.2f}",
            ]
        )

    print(
        render_table(
            ["config", "observed WCL", "analytical WCL", "makespan", "LLC hit rate"],
            rows,
            title="Paper platform, synthetic 4KiB write workload",
        )
    )
    print(
        "\nEvery observed WCL sits under its analytical bound; the private\n"
        "partition (P) has the lowest WCL, and sharing with the set\n"
        "sequencer (SS) keeps the bound 196x below best-effort sharing (NSS)."
    )


if __name__ == "__main__":
    main()
