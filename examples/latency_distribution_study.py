#!/usr/bin/env python3
"""Latency distributions, seed sweeps and histograms.

A single run gives one observed-WCL sample; a certification argument
wants the distribution.  This example sweeps ten workload seeds over
SS / NSS / P on the paper's platform, prints each configuration's
max/mean/spread, and renders ASCII latency histograms showing the tail
the set sequencer removes.

Run:  python examples/latency_distribution_study.py
"""

from repro import (
    PartitionKind,
    SyntheticWorkloadConfig,
    core_latency_stats,
    fig7_system,
    generate_disjoint_workload,
    render_histogram,
    simulate,
    sweep_seeds,
)
from repro.experiments.tables import render_table

SEEDS = list(range(1, 11))


def factory(seed):
    workload = SyntheticWorkloadConfig(
        num_requests=250, address_range_size=4096, seed=seed
    )
    return generate_disjoint_workload(workload, range(4))


def sweep_table() -> None:
    rows = []
    for kind in (PartitionKind.SS, PartitionKind.NSS, PartitionKind.P):
        config = fig7_system(kind)
        result = sweep_seeds(config, factory, SEEDS)
        rows.append(
            [
                kind.value,
                result.max_observed_wcl,
                result.wcl_spread,
                f"{result.mean_makespan:.0f}",
            ]
        )
    print(
        render_table(
            ["config", "max observed WCL (10 seeds)", "WCL spread", "mean makespan"],
            rows,
            title="Seed sweep on the paper's platform (4KiB ranges)",
        )
    )
    print()


def histograms() -> None:
    for kind in (PartitionKind.SS, PartitionKind.NSS):
        config = fig7_system(kind)
        report = simulate(config, factory(1))
        stats = core_latency_stats(report)
        print(
            f"{kind.value}: p50={stats.p50} p90={stats.p90} "
            f"p99={stats.p99} max={stats.maximum} cycles"
        )
        print(render_histogram(report.latencies(), bucket_width=200, max_bar=40))
        print()


if __name__ == "__main__":
    sweep_table()
    histograms()
    print(
        "The P configuration's distribution is a tight spike; SS keeps a\n"
        "short bounded tail; NSS's tail stretches with distance increases."
    )
