#!/usr/bin/env python3
"""Demonstrate the Section 4.1 unbounded-WCL scenario, step by step.

Reproduces Figure 2: with a TDM schedule {c_ua, c1, c1} (the interferer
owns two slots per period), the interferer can write back the entry the
LLC freed for the victim and immediately re-occupy it — every period,
forever.  Under 1S-TDM the same workload completes within the Theorem
4.7 bound.

The script prints the victim-latency growth table, then replays a short
run with the event log enabled so you can watch the steal happen.

Run:  python examples/unbounded_starvation_demo.py
"""

from repro import (
    ArbitrationPolicy,
    PartitionSpec,
    SystemConfig,
    TdmSchedule,
    simulate,
    starvation_witness,
)
from repro.experiments.tables import render_table
from repro.sim.events import EventKind
from repro.workloads.trace import MemoryTrace, TraceRecord
from repro.common.types import AccessType


def growth_table() -> None:
    result = starvation_witness(stream_lengths=(50, 100, 200, 400), ways=4)
    print(
        render_table(
            ["interferer stream", "multi-slot TDM (cycles)", "1S-TDM (cycles)"],
            [
                list(row)
                for row in zip(
                    result.stream_lengths,
                    result.multi_slot_latencies,
                    result.one_slot_latencies,
                )
            ],
            title="Victim latency vs interferer stream length",
        )
    )
    print(
        f"\nmulti-slot latency grows without bound: {result.multi_slot_growth}\n"
        f"1S-TDM stays under the Theorem 4.7 bound "
        f"({result.one_slot_bound_cycles} cycles): {result.one_slot_bounded}\n"
    )


def event_replay() -> None:
    ways = 2
    partition = PartitionSpec("shared", [0], (0, ways), (0, 1))
    config = SystemConfig(
        num_cores=2,
        partitions=[partition],
        slot_width=50,
        schedule=TdmSchedule((0, 1, 1), 50),
        llc_sets=1,
        llc_ways=ways,
        arbitration=ArbitrationPolicy.WRITEBACK_FIRST,
        record_events=True,
        max_slots=60,
    )
    victim = MemoryTrace([TraceRecord(1 << 26, AccessType.WRITE)], name="victim")
    interferer = MemoryTrace(
        [TraceRecord(block * 64, AccessType.WRITE) for block in range(30)],
        name="interferer",
    )
    report = simulate(
        config, {0: victim, 1: interferer}, start_cycles={0: 6 * 150}
    )
    print("Event log excerpt (victim = core 0, interferer = core 1):")
    interesting = (
        EventKind.REQ_BROADCAST,
        EventKind.EVICT_START,
        EventKind.WB_SENT,
        EventKind.ENTRY_FREED,
        EventKind.LLC_ALLOC,
        EventKind.BLOCKED_FULL,
    )
    shown = 0
    for event in report.events:
        if event.kind in interesting and event.cycle >= 5 * 150:
            print("  " + str(event))
            shown += 1
            if shown >= 25:
                break
    victim_report = report.core_reports[0]
    print(
        f"\nAfter {report.total_slots} slots the victim's request is "
        f"{'STILL PENDING' if victim_report.outstanding_block is not None else 'complete'} "
        f"({victim_report.outstanding_attempts} failed bus attempts)."
    )


if __name__ == "__main__":
    growth_table()
    event_replay()
