#!/usr/bin/env python3
"""Watch the set sequencer (Figure 6) order contending misses.

Four cores hammer the same single-set partition with writes.  With the
sequencer (SS) the event log shows misses registering in broadcast
order, non-head cores being refused free entries (``seq-blocked``), and
allocations following the FIFO exactly.  Without it (NSS) the first
core whose slot follows a freed entry steals it.

Run:  python examples/set_sequencer_walkthrough.py
"""

from repro import simulate
from repro.experiments.configs import build_system_for_notation
from repro.experiments.tables import render_table
from repro.sim.events import EventKind
from repro.workloads.adversarial import conflict_storm_traces


def run(notation: str):
    config = build_system_for_notation(notation, num_cores=4, record_events=True)
    traces = conflict_storm_traces(
        cores=[0, 1, 2, 3], partition_sets=1, lines_per_core=18, repeats=6
    )
    return simulate(config, traces)


def show_excerpt(report, title: str, kinds, limit: int = 18) -> None:
    print(title)
    shown = 0
    for event in report.events:
        if event.kind in kinds and event.slot > 40:
            print("  " + str(event))
            shown += 1
            if shown >= limit:
                break
    print()


def main() -> None:
    ss = run("SS(1,16,4)")
    nss = run("NSS(1,16,4)")

    show_excerpt(
        ss,
        "SS event log (note seq-register queues and seq-blocked refusals):",
        (
            EventKind.SEQ_REGISTER,
            EventKind.SEQ_BLOCKED,
            EventKind.LLC_ALLOC,
            EventKind.ENTRY_FREED,
        ),
    )

    stats = ss.sequencer_stats["shared"]
    print(
        render_table(
            ["metric", "value"],
            [
                ["registrations", stats.registrations],
                ["completions", stats.completions],
                ["head grants", stats.head_grants],
                ["blocked (not head)", stats.blocked_not_head],
                ["max sets tracked", stats.max_active_sets],
            ],
            title="Sequencer activity",
        )
    )

    print(
        render_table(
            ["config", "observed WCL", "blocked slots", "makespan"],
            [
                ["SS(1,16,4)", ss.observed_wcl(), ss.llc_blocked_slots, ss.makespan],
                ["NSS(1,16,4)", nss.observed_wcl(), nss.llc_blocked_slots, nss.makespan],
            ],
            title="\nSS vs NSS on the same storm",
        )
    )
    print(
        "\nThe sequencer trades a few refused slots for a strictly ordered\n"
        "service: the observed WCL never exceeds Theorem 4.8's bound, while\n"
        "NSS's distance increases (Observation 3) push its tail latency up."
    )


if __name__ == "__main__":
    main()
