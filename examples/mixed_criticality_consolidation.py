#!/usr/bin/env python3
"""Mixed-criticality consolidation: private partitions + a shared one.

The paper's conclusion envisions deployments where "certain tasks have
their own partitions, but others share partitions; all of which depends
on their performance and real-time requirements."  This example builds
exactly that on the paper's 4-core platform:

* core 0 runs an ASIL-D control task -> its own private partition
  (lowest WCL bound, (2N+1)*SW);
* cores 1-3 run QM/ASIL-B infotainment-style tasks -> one shared
  partition with the set sequencer (bounded by Theorem 4.8, far better
  capacity utilisation than three slivers).

The script checks each task's latency requirement against the
analytical bound of its partition, then simulates to show the bounds
hold and to compare capacity utilisation.

Run:  python examples/mixed_criticality_consolidation.py
"""

from repro import (
    PartitionSpec,
    SharedPartitionParams,
    SyntheticWorkloadConfig,
    SystemConfig,
    generate_core_trace,
    simulate,
    wcl_private_cycles,
    wcl_ss_cycles,
)
from repro.cpu.private_stack import PrivateStackConfig
from repro.experiments.tables import render_table

SLOT = 50
CORES = 4


def build_config() -> SystemConfig:
    partitions = [
        # ASIL-D task: 8 private sets x 16 ways = 8 KiB, isolated.
        PartitionSpec("asil-d", list(range(0, 8)), (0, 16), (0,)),
        # Three QM tasks share 24 sets x 16 ways = 24 KiB with the
        # set sequencer for a finite, size-independent WCL bound.
        PartitionSpec(
            "qm-shared", list(range(8, 32)), (0, 16), (1, 2, 3), sequencer=True
        ),
    ]
    return SystemConfig(
        num_cores=CORES,
        partitions=partitions,
        slot_width=SLOT,
        stack=PrivateStackConfig(l2_sets=16, l2_ways=4),
    )


def check_requirements() -> None:
    asil_d_bound = wcl_private_cycles(CORES, SLOT)
    shared_bound = wcl_ss_cycles(
        SharedPartitionParams(
            total_cores=CORES,
            sharers=3,
            ways=16,
            partition_lines=24 * 16,
            core_capacity_lines=64,
            slot_width=SLOT,
        )
    )
    requirements = [
        ["core 0 (ASIL-D control)", "private P(8,16)", 1_000, asil_d_bound],
        ["core 1 (QM navigation)", "shared SS(24,16,3)", 10_000, shared_bound],
        ["core 2 (QM media)", "shared SS(24,16,3)", 10_000, shared_bound],
        ["core 3 (ASIL-B logging)", "shared SS(24,16,3)", 10_000, shared_bound],
    ]
    print(
        render_table(
            ["task", "partition", "budget (cycles)", "WCL bound", "admitted"],
            [
                row + ["OK" if row[3] <= row[2] else "MISS"]
                for row in requirements
            ],
            title="Admission check: per-access latency budgets vs bounds",
        )
    )
    print()


def run_simulation() -> None:
    config = build_config()
    traces = {}
    # The ASIL-D task has a small, tight working set; the QM tasks are
    # hungry and benefit from pooling their 24 KiB.
    for core, (requests, range_bytes) in enumerate(
        [(300, 2048), (500, 12288), (500, 8192), (500, 4096)]
    ):
        workload = SyntheticWorkloadConfig(
            num_requests=requests,
            address_range_size=range_bytes,
            write_fraction=0.5,
            seed=77,
            range_stride=1 << 20,
        )
        traces[core] = generate_core_trace(workload, core)

    report = simulate(config, traces)
    rows = []
    for core in range(CORES):
        core_report = report.core_reports[core]
        rows.append(
            [
                f"core {core}",
                core_report.requests,
                core_report.observed_wcl,
                f"{core_report.mean_latency:.0f}",
                core_report.finish_time,
            ]
        )
    print(
        render_table(
            ["core", "LLC requests", "observed WCL", "mean latency", "finish"],
            rows,
            title="Simulated mixed-criticality run",
        )
    )
    asil_d_bound = wcl_private_cycles(CORES, SLOT)
    assert report.core_reports[0].observed_wcl <= asil_d_bound
    print(
        f"\nASIL-D observed WCL {report.core_reports[0].observed_wcl} <= "
        f"bound {asil_d_bound}; QM tasks shared 24KiB instead of "
        "3x8KiB slivers."
    )


if __name__ == "__main__":
    check_requirements()
    run_simulation()
