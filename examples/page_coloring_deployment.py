#!/usr/bin/env python3
"""Deploying set partitions with page coloring (Jailhouse/Bao style).

The simulator folds a core's addresses onto its partition's sets; a
real OS achieves the same confinement by only giving the task physical
pages of the partition's *colors*.  This example:

1. computes the color geometry of an LLC whose pages span 8 sets,
2. checks which partitions are expressible by coloring at all,
3. allocates a task's contiguous buffer from colored pages and shows
   every resulting physical line landing inside the partition,
4. runs the colored address stream through the simulator and verifies
   the traffic stayed inside the partition's sets.

Run:  python examples/page_coloring_deployment.py
"""

from repro import (
    AccessType,
    ColorGeometry,
    MemoryTrace,
    PartitionSpec,
    SystemConfig,
    TraceRecord,
    colored_allocator_for_partition,
    colors_of_partition,
    is_colorable,
    simulate,
)
from repro.experiments.tables import render_table

# An LLC where coloring has room to work: 32 sets, 64-B lines and
# 512-B pages -> each page spans 8 sets -> 4 colors.
GEOMETRY = ColorGeometry(line_size=64, num_sets=32, page_size=512)


def show_colorability() -> None:
    candidates = [
        PartitionSpec("color0", list(range(0, 8)), (0, 16), (0,)),
        PartitionSpec("colors1-2", list(range(8, 24)), (0, 16), (0,)),
        PartitionSpec("half-color", list(range(0, 4)), (0, 16), (0,)),
        PartitionSpec("one-set", [5], (0, 16), (0,)),
    ]
    rows = []
    for partition in candidates:
        if is_colorable(partition, GEOMETRY):
            colors = sorted(colors_of_partition(partition, GEOMETRY))
            rows.append([partition.name, len(partition.sets), str(colors)])
        else:
            rows.append([partition.name, len(partition.sets), "NOT colorable"])
    print(
        render_table(
            ["partition", "sets", "page colors"],
            rows,
            title=f"Colorability ({GEOMETRY.num_colors} colors, "
            f"{GEOMETRY.sets_per_page} sets/page)",
        )
    )
    print(
        "\nSub-color partitions (like Figure 7's single-set ones) need\n"
        "hardware index support; whole-color partitions deploy in software.\n"
    )


def run_colored_simulation() -> None:
    partition = PartitionSpec(
        "colored", list(range(8, 16)), (0, 16), (0,), sequencer=False
    )
    spare = PartitionSpec("rest", [s for s in range(32) if not 8 <= s < 16],
                          (0, 16), (1,))
    allocator = colored_allocator_for_partition(partition, GEOMETRY)

    # A task walking a contiguous 4 KiB virtual buffer, twice.
    virtual_addresses = [offset for offset in range(0, 4096, 64)] * 2
    physical = [allocator.translate(address) for address in virtual_addresses]
    trace = MemoryTrace(
        [TraceRecord(address, AccessType.WRITE) for address in physical],
        name="colored-task",
    )

    native_sets = sorted({(address // 64) % 32 for address in physical})
    print(f"physical line indices land in sets: {native_sets}")
    assert set(native_sets) <= set(partition.sets)

    config = SystemConfig(
        num_cores=2,
        partitions=[partition, spare],
        llc_sets=32,
        llc_ways=16,
    )
    report = simulate(config, {0: trace})
    print(
        f"simulated: {report.core_reports[0].requests} LLC requests, "
        f"{report.core_reports[0].private_hits} private hits, "
        f"LLC hit rate {report.llc_stats.hit_rate:.2f}"
    )
    print(
        "\nThe colored region (8 whole-color sets = 8KiB of LLC) holds the\n"
        "4KiB working set: the entire second pass hits in the LLC (hit\n"
        "rate 0.50 across both passes).  Note the classic coloring side\n"
        "effect on display: the private L2 is physically indexed too, so\n"
        "colored pages also restrict the task to a slice of its own L2 —\n"
        "here the L2 thrashes (0 private hits) while the LLC absorbs the\n"
        "reuse.  Deployments must budget for this L2/color interaction."
    )


if __name__ == "__main__":
    show_colorability()
    run_colored_simulation()
