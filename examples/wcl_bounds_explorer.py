#!/usr/bin/env python3
"""Explore the analytical WCL bounds (Theorems 4.7 and 4.8).

Prints the Theorem 4.7 proof decomposition (Figure 5's four parts) for
the paper's configuration, then sweeps the bounds across sharer count,
associativity and partition size — showing the paper's key claim: the
set sequencer makes the WCL independent of cache and partition size.

Run:  python examples/wcl_bounds_explorer.py
"""

from repro import (
    SharedPartitionParams,
    sweep_partition_lines,
    sweep_sharers,
    sweep_ways,
    wcl_nss_breakdown,
    wcl_nss_cycles,
    wcl_ss_cycles,
)
from repro.experiments.tables import render_table


def paper_params(**overrides) -> SharedPartitionParams:
    defaults = dict(
        total_cores=4,
        sharers=4,
        ways=16,
        partition_lines=16,
        core_capacity_lines=64,
        slot_width=50,
    )
    defaults.update(overrides)
    return SharedPartitionParams(**defaults)


def show_breakdown() -> None:
    params = paper_params()
    breakdown = wcl_nss_breakdown(params)
    print(
        render_table(
            ["part of the critical instance (Fig. 5)", "slots"],
            [
                ["(1) write-backs forced on c_ua (m)", breakdown.writebacks],
                ["(2) slots between two write-backs (A*N)", breakdown.slots_between_writebacks],
                ["(3) slots before the first write-back", breakdown.slots_before_first],
                ["(4) slots after the last (incl. response)", breakdown.slots_after_last],
                ["total = (m+1)*A*N + 1", breakdown.total_slots],
            ],
            title="Theorem 4.7 breakdown — NSS(1,16,4), SW=50",
        )
    )
    print(
        f"\n=> NSS bound {wcl_nss_cycles(params)} cycles vs "
        f"SS bound {wcl_ss_cycles(params)} cycles "
        f"({wcl_nss_cycles(params) / wcl_ss_cycles(params):.0f}x reduction)\n"
    )


def show_sweeps() -> None:
    base = paper_params(partition_lines=32)

    def table(points, label):
        print(
            render_table(
                [label, "NSS bound (cycles)", "SS bound (cycles)", "reduction"],
                [
                    [p.value, p.nss_cycles, p.ss_cycles, f"{p.reduction:.0f}x"]
                    for p in points
                ],
                title=f"Bound sensitivity: {label}",
            )
        )
        print()

    table(sweep_sharers(base, [2, 3, 4, 6, 8]), "sharers n")
    table(sweep_ways(base, [2, 4, 8, 16]), "ways w")
    table(
        sweep_partition_lines(base, [16, 32, 64, 128, 256]),
        "partition lines M",
    )
    print(
        "Note how the SS column is flat across ways and partition size:\n"
        "Theorem 4.8 depends only on the sharer count and the TDM period."
    )


if __name__ == "__main__":
    show_breakdown()
    show_sweeps()
