#!/usr/bin/env python3
"""Automatic partition planning with admission control.

Feeds a six-task automotive-style taskset into the admission planner
(:func:`repro.plan_admission`), which decides who gets a private
partition and who shares a sequencer-ordered one (the paper's Section 6
vision, as an algorithm).  The resulting layout is then validated by
simulation, and the task-level WCET mathematics
(:mod:`repro.analysis.wcet`) quantifies what sharing costs each task.

Run:  python examples/partition_planner.py
"""

from repro import (
    PlatformSpec,
    SyntheticWorkloadConfig,
    SystemConfig,
    TaskProfile,
    TaskSpec,
    generate_core_trace,
    hybrid_wcet_bound,
    plan_admission,
    sharing_cost_factor,
    simulate,
)
from repro.experiments.tables import render_table

PLATFORM = PlatformSpec(num_cores=6, llc_sets=32, llc_ways=16, slot_width=50)

TASKS = [
    TaskSpec("brake-control", 0, latency_budget_cycles=700,
             footprint_bytes=2048, criticality="ASIL-D", allow_sharing=False),
    TaskSpec("steering", 1, latency_budget_cycles=700,
             footprint_bytes=2048, criticality="ASIL-D", allow_sharing=False),
    TaskSpec("sensor-fusion", 2, latency_budget_cycles=7000,
             footprint_bytes=16384, criticality="ASIL-B"),
    TaskSpec("navigation", 3, latency_budget_cycles=20000,
             footprint_bytes=24576, criticality="QM"),
    TaskSpec("media", 4, latency_budget_cycles=20000,
             footprint_bytes=16384, criticality="QM"),
    TaskSpec("diagnostics", 5, latency_budget_cycles=20000,
             footprint_bytes=8192, criticality="QM"),
]


def show_plan(plan) -> None:
    rows = []
    for task in TASKS:
        verdict = plan.verdicts[task.name]
        rows.append(
            [
                task.name,
                task.criticality,
                verdict.partition_name,
                task.latency_budget_cycles,
                verdict.bound_cycles,
                "yes" if verdict.admitted else "NO",
            ]
        )
    print(
        render_table(
            ["task", "crit", "partition", "budget", "WCL bound", "admitted"],
            rows,
            title="Admission plan",
        )
    )
    print(
        f"\nLLC utilisation: {plan.sets_used}/{plan.platform.llc_sets} set rows "
        f"({plan.utilization():.0%}); feasible: {plan.feasible}\n"
    )


def validate_by_simulation(plan) -> None:
    config = SystemConfig(
        num_cores=PLATFORM.num_cores,
        partitions=plan.partitions,
        llc_sets=PLATFORM.llc_sets,
        llc_ways=PLATFORM.llc_ways,
        slot_width=PLATFORM.slot_width,
    )
    traces = {}
    for task in TASKS:
        workload = SyntheticWorkloadConfig(
            num_requests=250,
            address_range_size=task.footprint_bytes,
            write_fraction=0.6,
            seed=11,
            range_stride=1 << 20,
        )
        traces[task.core] = generate_core_trace(workload, task.core)
    report = simulate(config, traces)

    rows = []
    for task in TASKS:
        verdict = plan.verdicts[task.name]
        observed = report.observed_wcl(task.core)
        rows.append(
            [
                task.name,
                observed,
                verdict.bound_cycles,
                "yes" if observed <= verdict.bound_cycles else "VIOLATED",
            ]
        )
    print(
        render_table(
            ["task", "observed WCL", "analytical bound", "within"],
            rows,
            title="Simulation check of the plan",
        )
    )


def show_sharing_cost() -> None:
    profile = TaskProfile(accesses=10_000, llc_accesses=900)
    rows = []
    for sharers in (2, 3, 4):
        factor = sharing_cost_factor(
            profile, sharers, total_cores=PLATFORM.num_cores,
            slot_width=PLATFORM.slot_width,
        )
        rows.append([sharers, f"{factor:.2f}x"])
    private = hybrid_wcet_bound(profile, 650)  # (2N+1)*SW for N=6
    print(
        render_table(
            ["sharers", "WCET bound growth vs private"],
            rows,
            title="\nTask-level cost of sharing (9% LLC-access-rate task)",
        )
    )
    print(
        f"(private-partition hybrid WCET bound for this task: "
        f"{private.total_cycles} cycles)"
    )


if __name__ == "__main__":
    plan = plan_admission(TASKS, PLATFORM)
    show_plan(plan)
    validate_by_simulation(plan)
    show_sharing_cost()
